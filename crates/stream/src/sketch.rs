//! Bounded-memory streaming quantile sketch (Greenwald–Khanna).
//!
//! The batch pipeline holds the full measurement vector in memory; a
//! streaming deployment cannot. [`QuantileSketch`] summarizes an unbounded
//! stream of execution times in `O((1/ε)·log(εn))` space while answering
//! rank and quantile queries with additive rank error at most `εn` — the
//! classic GK summary (Greenwald & Khanna, SIGMOD 2001), the same family of
//! non-parametric streaming quantile estimators used by the federated
//! quantile literature.
//!
//! The exact minimum, maximum (the *high watermark* — load-bearing for
//! MBPTA reporting), count and sum are tracked exactly on the side: they
//! cost O(1) and the watermark must never be approximated.
//!
//! Sketches are **mergeable** ([`QuantileSketch::merge`]): two summaries
//! built over disjoint shards of one stream combine into a summary of the
//! union with the standard additive rank-error guarantee — a merged
//! sketch answers any rank query within `ε₁n₁ + ε₂n₂`, which at equal
//! per-shard `ε` is exactly `ε·(n₁+n₂)`. This is the federated
//! quantile-estimation shape: shards sketch independently, a coordinator
//! folds the sketches.

use proxima_stats::StatsError;

/// One GK summary tuple: a stored value `v` covering `g` observations, with
/// rank uncertainty `delta`.
///
/// With `r_min(i) = Σ_{j≤i} g_j` and `r_max(i) = r_min(i) + delta_i`, the
/// true rank of `v` lies in `[r_min, r_max]`; the GK invariant keeps
/// `g_i + delta_i ≤ ⌊2εn⌋ + 1` so any rank query is answerable within `εn`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Tuple {
    pub(crate) v: f64,
    pub(crate) g: u64,
    pub(crate) delta: u64,
}

/// An ε-approximate streaming quantile sketch over `f64` observations.
///
/// # Examples
///
/// ```
/// use proxima_stream::sketch::QuantileSketch;
///
/// let mut s = QuantileSketch::new(0.01)?;
/// for i in 0..10_000 {
///     s.insert(i as f64);
/// }
/// let med = s.quantile(0.5)?;
/// assert!((med / 5000.0 - 1.0).abs() < 0.05);
/// assert_eq!(s.max(), Some(9999.0));
/// assert!(s.tuples() < 600); // bounded memory, not 10k points
/// # Ok::<(), proxima_stats::StatsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    pub(crate) epsilon: f64,
    pub(crate) tuples: Vec<Tuple>,
    pub(crate) n: u64,
    pub(crate) inserts_since_compress: u64,
    pub(crate) min: f64,
    pub(crate) max: f64,
    pub(crate) sum: f64,
    /// Cumulative tuple-maintenance work (shifted/merged/sorted tuple
    /// slots) — a machine-independent cost counter for the ingest
    /// benches. Not part of the sketch's logical state: excluded from
    /// equality and never persisted.
    pub(crate) maintenance_ops: u64,
}

/// Equality is over the logical sketch state only; the
/// [`maintenance_ops`](QuantileSketch::maintenance_ops) work counter is
/// bookkeeping about *how* the state was reached, not part of it (the
/// batched and itemized ingest paths must compare equal).
impl PartialEq for QuantileSketch {
    fn eq(&self, other: &Self) -> bool {
        self.epsilon == other.epsilon
            && self.tuples == other.tuples
            && self.n == other.n
            && self.inserts_since_compress == other.inserts_since_compress
            && self.min == other.min
            && self.max == other.max
            && self.sum == other.sum
    }
}

impl QuantileSketch {
    /// Create a sketch with rank-error bound `epsilon` (e.g. `0.001` keeps
    /// every quantile within ±0.1% of the true rank).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < epsilon < 0.5`.
    pub fn new(epsilon: f64) -> Result<Self, StatsError> {
        if !(epsilon > 0.0 && epsilon < 0.5) {
            return Err(StatsError::InvalidArgument {
                what: "sketch epsilon must be in (0, 0.5)",
            });
        }
        Ok(QuantileSketch {
            epsilon,
            tuples: Vec::new(),
            n: 0,
            inserts_since_compress: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            maintenance_ops: 0,
        })
    }

    /// The configured rank-error bound.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of observations ingested.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of summary tuples currently held — the memory footprint.
    pub fn tuples(&self) -> usize {
        self.tuples.len()
    }

    /// Exact minimum observed, if any.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Exact maximum observed — the campaign's high watermark.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Exact running mean, if any observation arrived.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.sum / self.n as f64)
    }

    /// The `⌊2εn⌋` capacity bound of the GK invariant at the current `n`.
    fn band(&self) -> u64 {
        (2.0 * self.epsilon * self.n as f64).floor() as u64
    }

    /// The smallest insert count at which the periodic compress fires —
    /// the integer form of the `inserts as f64 >= 1/(2ε)` trigger, so the
    /// batch path can cut its segments at exactly the itemized
    /// compression points.
    fn compress_threshold(&self) -> u64 {
        let limit = 1.0 / (2.0 * self.epsilon);
        let mut k = limit.ceil() as u64;
        // Defend the float edge: k must be the *smallest* integer whose
        // f64 image clears the trigger.
        while k > 1 && (k - 1) as f64 >= limit {
            k -= 1;
        }
        k.max(1)
    }

    /// Ingest one observation. Non-finite values are ignored by the sketch
    /// proper (the analyzer validates before inserting).
    pub fn insert(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
        // Position of the first tuple with v >= x.
        let pos = self.tuples.partition_point(|t| t.v < x);
        let delta = if pos == 0 || pos == self.tuples.len() {
            // New extreme values have exact rank.
            0
        } else {
            self.band().saturating_sub(1)
        };
        // Cost model: the mid-list insert shifts every tuple behind it.
        self.maintenance_ops += (self.tuples.len() - pos) as u64 + 1;
        self.tuples.insert(pos, Tuple { v: x, g: 1, delta });
        self.inserts_since_compress += 1;
        if self.inserts_since_compress as f64 >= 1.0 / (2.0 * self.epsilon) {
            self.compress();
            self.inserts_since_compress = 0;
        }
    }

    /// Bulk-ingest a slice of observations, maintaining the summary in
    /// amortized chunks: each segment between two compression points is
    /// sorted once and sort-merged into the tuple list in a single pass,
    /// instead of `len` binary-searched mid-list inserts.
    ///
    /// The resulting sketch is **bit-identical** to folding
    /// [`insert`](Self::insert) over the slice — every tuple, counter and
    /// side statistic, at every batch split — so checkpoints, merges and
    /// the `εn` rank bound are untouched; only the maintenance cost
    /// changes (see [`maintenance_ops`](Self::maintenance_ops)).
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_stream::sketch::QuantileSketch;
    ///
    /// let mut batched = QuantileSketch::new(0.01)?;
    /// let mut itemized = QuantileSketch::new(0.01)?;
    /// let xs: Vec<f64> = (0..5_000).map(|i| ((i * 37) % 1000) as f64).collect();
    /// batched.insert_batch(&xs);
    /// for &x in &xs {
    ///     itemized.insert(x);
    /// }
    /// assert_eq!(batched, itemized);
    /// # Ok::<(), proxima_stats::StatsError>(())
    /// ```
    pub fn insert_batch(&mut self, xs: &[f64]) {
        let threshold = self.compress_threshold();
        let mut seg: Vec<f64> = Vec::new();
        let mut i = 0usize;
        while i < xs.len() {
            // A segment ends exactly where the itemized path would have
            // compressed; `max(1)` keeps progress if a decoded counter
            // somehow sits at/past the threshold (itemized would then
            // compress after one more insert).
            let room = threshold
                .saturating_sub(self.inserts_since_compress)
                .max(1)
                .min(xs.len() as u64) as usize;
            seg.clear();
            while i < xs.len() && seg.len() < room {
                let x = xs[i];
                i += 1;
                // Non-finite values are ignored and do not advance the
                // compression counter, exactly as in `insert`.
                if x.is_finite() {
                    seg.push(x);
                }
            }
            if seg.is_empty() {
                break;
            }
            self.insert_segment(&seg);
            self.inserts_since_compress += seg.len() as u64;
            if self.inserts_since_compress >= threshold {
                self.compress();
                self.inserts_since_compress = 0;
            }
        }
    }

    /// Uniform bulk-ingest spelling shared with the monitor/analyzer/
    /// session layers; identical to [`insert_batch`](Self::insert_batch).
    pub fn push_batch(&mut self, xs: &[f64]) {
        self.insert_batch(xs);
    }

    /// Sort-merge one all-finite segment (never spanning a compression
    /// point) into the tuple list, reproducing the per-item insert state
    /// exactly: each element's `delta` is fixed by whether it was a new
    /// extreme *at its own arrival* (against both the pre-existing tuples
    /// and the earlier elements of the segment) and by `band(n)` at its
    /// own `n`; ties land before equal-valued earlier arrivals, as
    /// `partition_point` places them.
    fn insert_segment(&mut self, seg: &[f64]) {
        // Running extremes of the evolving tuple list: `pos == 0` in the
        // itemized path means `x <= tuples[0].v`, `pos == len` means
        // `x > tuples.last().v`.
        let mut lo = self.tuples.first().map_or(f64::INFINITY, |t| t.v);
        let mut hi = self.tuples.last().map_or(f64::NEG_INFINITY, |t| t.v);
        // (value, arrival index, delta)
        let mut entries: Vec<(f64, usize, u64)> = Vec::with_capacity(seg.len());
        for (seq, &x) in seg.iter().enumerate() {
            self.n += 1;
            self.min = self.min.min(x);
            self.max = self.max.max(x);
            self.sum += x;
            let delta = if x <= lo || x > hi {
                0
            } else {
                self.band().saturating_sub(1)
            };
            lo = lo.min(x);
            hi = hi.max(x);
            entries.push((x, seq, delta));
        }
        // Later arrivals sort before earlier ones at equal values: a
        // repeated insert lands at the partition point, *before* the
        // equal-valued tuple already present.
        entries.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
        let old = std::mem::take(&mut self.tuples);
        let m = entries.len();
        // Cost model: one O(m log m) sort plus one linear merge pass.
        self.maintenance_ops +=
            (old.len() + m) as u64 + m as u64 * u64::from((m.max(2) - 1).ilog2() + 1);
        let mut merged = Vec::with_capacity(old.len() + m);
        let mut j = 0usize;
        for t in old {
            while j < m && entries[j].0 <= t.v {
                let (v, _, delta) = entries[j];
                merged.push(Tuple { v, g: 1, delta });
                j += 1;
            }
            merged.push(t);
        }
        for &(v, _, delta) in &entries[j..] {
            merged.push(Tuple { v, g: 1, delta });
        }
        self.tuples = merged;
    }

    /// Merge adjacent tuples whose combined coverage still satisfies the GK
    /// invariant, sweeping from the tail (standard GK compress), in one
    /// backward pass.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let band = self.band();
        self.maintenance_ops += self.tuples.len() as u64;
        let old = std::mem::take(&mut self.tuples);
        let mut rev: Vec<Tuple> = Vec::with_capacity(old.len());
        // Never merge away the first or last tuple: they pin min/max
        // ranks. `right` is the rightmost not-yet-emitted survivor, so a
        // run of small tuples chains into it exactly as the classic
        // remove()-based sweep does.
        let mut right = old[old.len() - 1];
        for i in (1..old.len() - 1).rev() {
            let merged_g = old[i].g + right.g;
            if merged_g + right.delta <= band {
                right.g = merged_g;
            } else {
                rev.push(right);
                right = old[i];
            }
        }
        rev.push(right);
        rev.push(old[0]);
        rev.reverse();
        self.tuples = rev;
    }

    /// Cumulative tuple-maintenance operations (slots shifted, merged or
    /// sorted) since construction — the machine-independent work counter
    /// the ingest benches compare batched vs itemized ingest on. Resets
    /// to zero on checkpoint restore and never participates in equality.
    pub fn maintenance_ops(&self) -> u64 {
        self.maintenance_ops
    }

    /// Fold another sketch into this one, as if every observation the
    /// other sketch summarized had been inserted here.
    ///
    /// The exact side statistics (count, sum, min, max) merge exactly.
    /// For the summary tuples the standard additive guarantee holds: the
    /// merged sketch answers rank queries within `ε₁n₁ + ε₂n₂`, so
    /// merging shards built at one common `ε` preserves `ε·n` over the
    /// union — and the bound is transitive over any merge tree. The
    /// merged `epsilon()` is `max(ε₁, ε₂)`, which dominates the additive
    /// bound (`ε₁n₁ + ε₂n₂ ≤ max(ε₁,ε₂)·(n₁+n₂)`).
    ///
    /// Each tuple keeps its coverage `g` and widens its `delta` by the
    /// rank uncertainty the *other* summary contributes at that value: if
    /// the next not-yet-merged tuple of the other summary is `(g', Δ')`,
    /// the true count of other-stream observations below the merged value
    /// can swing by `g' + Δ' − 1`. Summing `r_min`/`r_max` bounds this
    /// way is the classic GK merge.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.epsilon = self.epsilon.max(other.epsilon);
        let a = std::mem::take(&mut self.tuples);
        let b = &other.tuples;
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            let from_a = j >= b.len() || (i < a.len() && a[i].v <= b[j].v);
            let (t, peer) = if from_a {
                let t = a[i];
                i += 1;
                (t, b.get(j))
            } else {
                let t = b[j];
                j += 1;
                (t, a.get(i))
            };
            // The next unconsumed peer tuple has a value ≥ t.v; the peer
            // stream's rank at t.v is pinned only to within its spread.
            let spread = peer.map_or(0, |p| p.g + p.delta - 1);
            merged.push(Tuple {
                v: t.v,
                g: t.g,
                delta: t.delta + spread,
            });
        }
        self.tuples = merged;
        self.compress();
        self.inserts_since_compress = 0;
    }

    /// The value at quantile `phi ∈ [0, 1]`, within `εn` rank error.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidArgument`] for `phi` outside `[0, 1]`;
    /// * [`StatsError::InsufficientData`] on an empty sketch.
    pub fn quantile(&self, phi: f64) -> Result<f64, StatsError> {
        if !(0.0..=1.0).contains(&phi) {
            return Err(StatsError::InvalidArgument {
                what: "quantile level must be in [0, 1]",
            });
        }
        if self.n == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        let target = (phi * self.n as f64).ceil().max(1.0) as u64;
        let slack = (self.epsilon * self.n as f64).ceil() as u64;
        let mut r_min = 0u64;
        for t in &self.tuples {
            r_min += t.g;
            let r_max = r_min + t.delta;
            if target <= r_min + slack && r_max <= target + slack {
                return Ok(t.v);
            }
        }
        // proxima-lint: allow(no-lib-panic) -- the n == 0 guard above
        // returned InsufficientData, so the sketch holds at least one tuple.
        Ok(self.tuples.last().expect("non-empty sketch").v)
    }

    /// Approximate rank of `x`: how many observations are ≤ `x`, within
    /// `εn`.
    pub fn rank(&self, x: f64) -> u64 {
        let mut r_min = 0u64;
        let mut last_covered = 0u64;
        for t in &self.tuples {
            r_min += t.g;
            if t.v <= x {
                last_covered = r_min;
            } else {
                break;
            }
        }
        last_covered
    }

    /// Approximate empirical CDF at `x`: `rank(x) / n` (0 on an empty
    /// sketch).
    pub fn ecdf(&self, x: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.rank(x) as f64 / self.n as f64
    }

    /// Approximate empirical survival `1 − F̂(x)` — the observed-tail side
    /// of a pWCET plot.
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.ecdf(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rejects_bad_epsilon() {
        assert!(QuantileSketch::new(0.0).is_err());
        assert!(QuantileSketch::new(0.5).is_err());
        assert!(QuantileSketch::new(-0.1).is_err());
        assert!(QuantileSketch::new(0.01).is_ok());
    }

    #[test]
    fn empty_sketch_behaviour() {
        let s = QuantileSketch::new(0.01).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert!(s.quantile(0.5).is_err());
        assert_eq!(s.ecdf(10.0), 0.0);
    }

    #[test]
    fn exact_extremes_and_mean() {
        let mut s = QuantileSketch::new(0.05).unwrap();
        for x in [5.0, 1.0, 9.0, 3.0] {
            s.insert(x);
        }
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.mean(), Some(4.5));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn quantiles_within_rank_error_on_shuffled_stream() {
        let eps = 0.01;
        let n = 20_000usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut s = QuantileSketch::new(eps).unwrap();
        let mut values: Vec<f64> = Vec::with_capacity(n);
        for _ in 0..n {
            let x = 1e5 + 1e4 * rng.gen::<f64>();
            values.push(x);
            s.insert(x);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &phi in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let est = s.quantile(phi).unwrap();
            // True rank of the estimate must be within eps*n of phi*n.
            let rank = values.partition_point(|&v| v <= est) as f64;
            let err = (rank - phi * n as f64).abs();
            assert!(
                err <= eps * n as f64 + 1.0,
                "phi={phi} rank err {err} > {}",
                eps * n as f64
            );
        }
    }

    #[test]
    fn memory_stays_sublinear() {
        let mut s = QuantileSketch::new(0.01).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..50_000 {
            s.insert(rng.gen::<f64>());
        }
        // GK bound is O((1/ε)·log(εn)); allow a lazy constant. The point:
        // 50k inserts must not retain anything near 50k tuples.
        assert!(s.tuples() < 2_000, "tuples = {}", s.tuples());
    }

    #[test]
    fn sorted_and_reversed_streams_agree_with_truth() {
        let n = 5_000;
        for reverse in [false, true] {
            let mut s = QuantileSketch::new(0.02).unwrap();
            let iter: Box<dyn Iterator<Item = u64>> = if reverse {
                Box::new((0..n).rev())
            } else {
                Box::new(0..n)
            };
            for i in iter {
                s.insert(i as f64);
            }
            let q = s.quantile(0.9).unwrap();
            assert!((q / (0.9 * n as f64) - 1.0).abs() < 0.05, "q={q}");
        }
    }

    #[test]
    fn ecdf_and_survival_are_complementary() {
        let mut s = QuantileSketch::new(0.01).unwrap();
        for i in 0..1000 {
            s.insert(i as f64);
        }
        let f = s.ecdf(500.0);
        assert!((f - 0.5).abs() < 0.03, "F(500)={f}");
        assert!((s.survival(500.0) + f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_inserts_ignored() {
        let mut s = QuantileSketch::new(0.01).unwrap();
        s.insert(f64::NAN);
        s.insert(f64::INFINITY);
        assert!(s.is_empty());
        s.insert(1.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.quantile(0.5).unwrap(), 1.0);
    }

    #[test]
    fn merge_side_stats_are_exact() {
        let mut a = QuantileSketch::new(0.01).unwrap();
        let mut b = QuantileSketch::new(0.01).unwrap();
        for x in [5.0, 1.0, 9.0] {
            a.insert(x);
        }
        for x in [2.0, 12.0] {
            b.insert(x);
        }
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(12.0));
        assert_eq!(a.mean(), Some(29.0 / 5.0));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut filled = QuantileSketch::new(0.01).unwrap();
        for i in 0..500 {
            filled.insert(i as f64);
        }
        let reference = filled.clone();
        filled.merge(&QuantileSketch::new(0.01).unwrap());
        assert_eq!(filled, reference);
        let mut empty = QuantileSketch::new(0.01).unwrap();
        empty.merge(&reference);
        assert_eq!(empty, reference);
    }

    #[test]
    fn merged_quantiles_within_rank_error() {
        let eps = 0.01;
        let n = 20_000usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut values: Vec<f64> = Vec::with_capacity(n);
        // Four shards with disjoint value regimes — the worst case for a
        // naive merge that averaged instead of bounding ranks.
        let mut shards: Vec<QuantileSketch> =
            (0..4).map(|_| QuantileSketch::new(eps).unwrap()).collect();
        for (s, shard) in shards.iter_mut().enumerate() {
            for _ in 0..n / 4 {
                let x = 1e5 * (s + 1) as f64 + 1e4 * rng.gen::<f64>();
                values.push(x);
                shard.insert(x);
            }
        }
        let mut merged = shards.remove(0);
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.len(), n as u64);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &phi in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let est = merged.quantile(phi).unwrap();
            let rank = values.partition_point(|&v| v <= est) as f64;
            let err = (rank - phi * n as f64).abs();
            assert!(
                err <= eps * n as f64 + 1.0,
                "phi={phi} rank err {err} > {}",
                eps * n as f64
            );
        }
    }

    #[test]
    fn merge_keeps_memory_sublinear_and_insertable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut merged = QuantileSketch::new(0.01).unwrap();
        for _ in 0..8 {
            let mut shard = QuantileSketch::new(0.01).unwrap();
            for _ in 0..5_000 {
                shard.insert(rng.gen::<f64>());
            }
            merged.merge(&shard);
        }
        assert_eq!(merged.len(), 40_000);
        assert!(merged.tuples() < 4_000, "tuples = {}", merged.tuples());
        // The merged sketch keeps accepting inserts under the grown band.
        for _ in 0..5_000 {
            merged.insert(rng.gen::<f64>());
        }
        let med = merged.quantile(0.5).unwrap();
        assert!((med - 0.5).abs() < 0.02, "median {med}");
    }

    #[test]
    fn merge_takes_the_looser_epsilon() {
        let mut tight = QuantileSketch::new(0.001).unwrap();
        let mut loose = QuantileSketch::new(0.05).unwrap();
        tight.insert(1.0);
        loose.insert(2.0);
        tight.merge(&loose);
        assert_eq!(tight.epsilon(), 0.05);
    }

    #[test]
    fn batch_insert_is_bit_identical_to_itemized() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let streams: Vec<Vec<f64>> = vec![
            (0..5_000).map(|_| 1e5 + 1e4 * rng.gen::<f64>()).collect(),
            (0..5_000).map(|i| i as f64).collect(),
            (0..5_000).rev().map(|i| i as f64).collect(),
            (0..5_000)
                .map(|i| if i % 10 == 0 { 2.0 } else { 1.0 })
                .collect(),
            vec![42.0; 3_000],
        ];
        for (k, stream) in streams.iter().enumerate() {
            for eps in [0.001, 0.01, 0.2] {
                let mut itemized = QuantileSketch::new(eps).unwrap();
                for &x in stream {
                    itemized.insert(x);
                }
                // One whole-stream batch, and ragged splits that straddle
                // compression points.
                for chunk in [stream.len(), 1, 7, 499, 500, 501] {
                    let mut batched = QuantileSketch::new(eps).unwrap();
                    for piece in stream.chunks(chunk) {
                        batched.insert_batch(piece);
                    }
                    assert_eq!(
                        batched, itemized,
                        "stream {k} eps {eps} chunk {chunk} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_insert_skips_non_finite_like_itemized() {
        let stream = [1.0, f64::NAN, 2.0, f64::INFINITY, 3.0, f64::NEG_INFINITY];
        let mut itemized = QuantileSketch::new(0.01).unwrap();
        for &x in &stream {
            itemized.insert(x);
        }
        let mut batched = QuantileSketch::new(0.01).unwrap();
        batched.insert_batch(&stream);
        assert_eq!(batched, itemized);
        assert_eq!(batched.len(), 3);
        // An all-non-finite batch is a no-op.
        let before = batched.clone();
        batched.insert_batch(&[f64::NAN, f64::INFINITY]);
        assert_eq!(batched, before);
    }

    #[test]
    fn batch_insert_does_less_maintenance_work() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let stream: Vec<f64> = (0..20_000).map(|_| 1e5 + 1e4 * rng.gen::<f64>()).collect();
        let mut itemized = QuantileSketch::new(0.001).unwrap();
        for &x in &stream {
            itemized.insert(x);
        }
        let mut batched = QuantileSketch::new(0.001).unwrap();
        for piece in stream.chunks(1_000) {
            batched.insert_batch(piece);
        }
        assert_eq!(batched, itemized);
        let (b, i) = (batched.maintenance_ops(), itemized.maintenance_ops());
        assert!(
            b * 5 <= i,
            "batched ingest must do ≥5x less tuple maintenance: batched {b} vs itemized {i}"
        );
    }

    #[test]
    fn batched_compaction_keeps_the_rank_error_bound() {
        // The εn bound must survive batched maintenance (acceptance: GK
        // rank-error bound under batched compaction).
        let eps = 0.01;
        let n = 20_000usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut s = QuantileSketch::new(eps).unwrap();
        let values: Vec<f64> = (0..n).map(|_| 1e5 + 1e4 * rng.gen::<f64>()).collect();
        for piece in values.chunks(777) {
            s.insert_batch(piece);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &phi in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let est = s.quantile(phi).unwrap();
            let rank = sorted.partition_point(|&v| v <= est) as f64;
            let err = (rank - phi * n as f64).abs();
            assert!(
                err <= eps * n as f64 + 1.0,
                "phi={phi} rank err {err} > {}",
                eps * n as f64
            );
        }
    }

    #[test]
    fn duplicate_heavy_stream_is_fine() {
        let mut s = QuantileSketch::new(0.01).unwrap();
        for i in 0..10_000 {
            s.insert(if i % 10 == 0 { 2.0 } else { 1.0 });
        }
        assert_eq!(s.quantile(0.5).unwrap(), 1.0);
        assert_eq!(s.quantile(0.99).unwrap(), 2.0);
        assert_eq!(s.max(), Some(2.0));
    }
}
