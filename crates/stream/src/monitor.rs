//! Rolling i.i.d. health monitoring for measurement streams.
//!
//! The batch pipeline gates on Ljung-Box + KS over the whole campaign; a
//! stream cannot wait for "the whole campaign". [`IidMonitor`] keeps a
//! bounded window of the most recent observations and continuously re-runs
//! two cheap non-parametric diagnostics over it:
//!
//! * **online autocorrelation** — [`proxima_stats::autocorr::autocorrelation`]
//!   over the window, pooled into the Ljung-Box statistic (the batch
//!   gate's independence test, windowed);
//! * **runs test** — the Wald–Wolfowitz runs test of the window
//!   ([`proxima_stats::tests::runs_test`]).
//!
//! Each test is held to `α/2` (Bonferroni over the pair), so the
//! family-wise false-alarm rate per window stays at `α`. The per-lag
//! white-noise band is still reported for display, but a single lag
//! poking out of it does not flag the window — the pooled Ljung-Box
//! verdict decides, matching the batch i.i.d. gate's behaviour.
//!
//! A flag does not abort the stream (a transient disturbance should not
//! kill a long campaign); it is reported in every [`PwcetSnapshot`] so the
//! consumer can discount estimates produced under suspect conditions.
//!
//! [`PwcetSnapshot`]: crate::analyzer::PwcetSnapshot

use std::collections::VecDeque;

use proxima_stats::autocorr::{autocorrelation, default_lag};
use proxima_stats::dist::{ContinuousDistribution, Normal};
use proxima_stats::tests::{ljung_box, runs_test};

/// The health verdict over the current window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IidStatus {
    /// Not enough observations in the window to run the diagnostics.
    Warming,
    /// All diagnostics consistent with an i.i.d. stream.
    Healthy,
    /// At least one diagnostic flagged the window.
    Suspect,
}

impl std::fmt::Display for IidStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IidStatus::Warming => write!(f, "warming"),
            IidStatus::Healthy => write!(f, "healthy"),
            IidStatus::Suspect => write!(f, "suspect"),
        }
    }
}

/// One evaluation of the rolling diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IidHealth {
    /// The verdict.
    pub status: IidStatus,
    /// Observations in the window when evaluated.
    pub window_len: usize,
    /// Largest `|ρ̂_k|` over the tested lags (`None` while warming or on a
    /// degenerate window) — informational, not part of the verdict.
    pub max_abs_autocorr: Option<f64>,
    /// The per-lag white-noise reference band `z_{1−α/(2L)}/√W` —
    /// informational, for display next to `max_abs_autocorr`.
    pub autocorr_band: Option<f64>,
    /// p-value of the windowed Ljung-Box independence test, when
    /// computable.
    pub ljung_box_p: Option<f64>,
    /// p-value of the runs test over the window, when computable.
    pub runs_p: Option<f64>,
}

impl IidHealth {
    /// `true` unless a diagnostic flagged the window (warming counts as
    /// not-flagged: no evidence either way).
    pub fn acceptable(&self) -> bool {
        self.status != IidStatus::Suspect
    }
}

/// Bounded-window i.i.d. monitor.
///
/// # Examples
///
/// ```
/// use proxima_stream::monitor::{IidMonitor, IidStatus};
///
/// let mut m = IidMonitor::new(256, 0.05);
/// for i in 0u64..300 {
///     // A deterministic but well-mixed (SplitMix64-style) sequence.
///     let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
///     z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
///     m.push((z >> 11) as f64);
/// }
/// assert_eq!(m.health().status, IidStatus::Healthy);
/// ```
#[derive(Debug, Clone)]
pub struct IidMonitor {
    pub(crate) window: VecDeque<f64>,
    pub(crate) capacity: usize,
    pub(crate) alpha: f64,
}

/// Observations required before the diagnostics run.
pub(crate) const MIN_WINDOW: usize = 50;

impl IidMonitor {
    /// Create a monitor holding the last `capacity` observations, testing
    /// at significance `alpha` (values outside `(0, 0.5]` are clamped to
    /// 0.05).
    pub fn new(capacity: usize, alpha: f64) -> Self {
        let alpha = if alpha > 0.0 && alpha <= 0.5 {
            alpha
        } else {
            0.05
        };
        IidMonitor {
            window: VecDeque::with_capacity(capacity.max(MIN_WINDOW)),
            capacity: capacity.max(MIN_WINDOW),
            alpha,
        }
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of buffered observations.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// `true` before any observation.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Ingest one observation, evicting the oldest beyond capacity.
    pub fn push(&mut self, x: f64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
    }

    /// Bulk-ingest a slice of observations. The window afterwards is
    /// exactly what folding [`push`](Self::push) over the slice leaves:
    /// the most recent `capacity` observations — but computed without
    /// per-item eviction churn (a batch at least as long as the window
    /// replaces it outright; a shorter one evicts the overflow in one
    /// drain).
    pub fn push_batch(&mut self, xs: &[f64]) {
        if xs.len() >= self.capacity {
            self.window.clear();
            self.window.extend(&xs[xs.len() - self.capacity..]);
            return;
        }
        let overflow = (self.window.len() + xs.len()).saturating_sub(self.capacity);
        self.window.drain(..overflow);
        self.window.extend(xs);
    }

    /// Fold a monitor that observed the **continuation** of this stream:
    /// `other`'s window holds the observations that arrived after this
    /// one's, so the merged window is the concatenation trimmed to the
    /// most recent `capacity` observations.
    ///
    /// Because each shard's window is a suffix of its own chunk, folding
    /// the shards of one contiguously split stream in shard order
    /// reproduces **exactly** the window a single monitor over the whole
    /// stream would hold — the monitor's sufficient statistics are its
    /// window, and suffixes of consecutive chunks concatenate into a
    /// suffix of the union.
    pub fn merge(&mut self, other: &IidMonitor) {
        for &x in &other.window {
            self.push(x);
        }
    }

    /// Evaluate the diagnostics over the current window.
    pub fn health(&self) -> IidHealth {
        let w = self.window.len();
        if w < MIN_WINDOW {
            return IidHealth {
                status: IidStatus::Warming,
                window_len: w,
                max_abs_autocorr: None,
                autocorr_band: None,
                ljung_box_p: None,
                runs_p: None,
            };
        }
        let xs: Vec<f64> = self.window.iter().copied().collect();
        let lags = default_lag(w);
        // Reference band for display: Bonferroni across the tested lags.
        let z = Normal::new(0.0, 1.0)
            // proxima-lint: allow(no-lib-panic) -- sigma 1.0 > 0: infallible.
            .expect("unit normal")
            .quantile(1.0 - self.alpha / (2.0 * lags as f64))
            // proxima-lint: allow(no-lib-panic) -- alpha is validated into
            // (0, 1) at config time, so the argument stays inside (0, 1).
            .expect("probability in range");
        let band = z / (w as f64).sqrt();
        // A degenerate (constant) window supports neither test; nothing
        // to flag beyond what the fit layer already rejects.
        let max_abs = autocorrelation(&xs, lags)
            .ok()
            .map(|rho| rho.iter().fold(0.0f64, |m, r| m.max(r.abs())));
        let lb = ljung_box(&xs, lags).ok();
        let runs = runs_test(&xs).ok();
        // Bonferroni over the two gate tests: each at alpha/2.
        let per_test = self.alpha / 2.0;
        let lb_ok = lb.is_none_or(|r| r.passes(per_test));
        let runs_ok = runs.is_none_or(|r| r.passes(per_test));
        IidHealth {
            status: if lb_ok && runs_ok {
                IidStatus::Healthy
            } else {
                IidStatus::Suspect
            },
            window_len: w,
            max_abs_autocorr: max_abs,
            autocorr_band: Some(band),
            ljung_box_p: lb.map(|r| r.p_value),
            runs_p: runs.map(|r| r.p_value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn warming_until_min_window() {
        let mut m = IidMonitor::new(200, 0.05);
        for i in 0..MIN_WINDOW - 1 {
            m.push(i as f64);
            assert_eq!(m.health().status, IidStatus::Warming);
        }
        m.push(0.5);
        assert_ne!(m.health().status, IidStatus::Warming);
    }

    #[test]
    fn iid_stream_reported_healthy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut m = IidMonitor::new(400, 0.05);
        for _ in 0..400 {
            m.push(1e5 + 100.0 * rng.gen::<f64>());
        }
        let h = m.health();
        assert_eq!(h.status, IidStatus::Healthy, "{h:?}");
        assert!(h.acceptable());
        assert!(h.max_abs_autocorr.unwrap() <= h.autocorr_band.unwrap());
    }

    #[test]
    fn strongly_autocorrelated_stream_flagged() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut m = IidMonitor::new(400, 0.05);
        let mut level = 0.0f64;
        for _ in 0..400 {
            level = 0.95 * level + rng.gen::<f64>();
            m.push(1e5 + 500.0 * level);
        }
        let h = m.health();
        assert_eq!(h.status, IidStatus::Suspect, "{h:?}");
        assert!(!h.acceptable());
    }

    #[test]
    fn window_evicts_old_regime() {
        // A drifting prefix followed by a long i.i.d. tail: once the drift
        // leaves the window the monitor recovers.
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut m = IidMonitor::new(200, 0.05);
        for i in 0..200 {
            m.push(1e5 + i as f64 * 100.0); // strong trend
        }
        assert_eq!(m.health().status, IidStatus::Suspect);
        for _ in 0..400 {
            m.push(1e5 + 100.0 * rng.gen::<f64>());
        }
        assert_eq!(m.health().status, IidStatus::Healthy);
        assert_eq!(m.len(), 200);
    }

    #[test]
    fn constant_window_not_a_crash() {
        let mut m = IidMonitor::new(100, 0.05);
        for _ in 0..100 {
            m.push(42.0);
        }
        // Degenerate: autocorrelation and runs test both unavailable.
        let h = m.health();
        assert_eq!(h.window_len, 100);
        assert!(h.max_abs_autocorr.is_none());
    }

    #[test]
    fn merge_reproduces_the_single_monitor_window() {
        // A stream split into contiguous chunks, one monitor per chunk,
        // folded in chunk order, must hold exactly the single monitor's
        // window — including when chunks are shorter than the capacity.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let stream: Vec<f64> = (0..700).map(|_| 1e5 + 100.0 * rng.gen::<f64>()).collect();
        for splits in [vec![700], vec![350, 350], vec![100, 80, 120, 400]] {
            let mut single = IidMonitor::new(200, 0.05);
            for &x in &stream {
                single.push(x);
            }
            let mut merged: Option<IidMonitor> = None;
            let mut start = 0;
            for len in splits {
                let mut shard = IidMonitor::new(200, 0.05);
                for &x in &stream[start..start + len] {
                    shard.push(x);
                }
                start += len;
                match merged.as_mut() {
                    None => merged = Some(shard),
                    Some(m) => m.merge(&shard),
                }
            }
            let merged = merged.unwrap();
            assert_eq!(merged.window, single.window);
            assert_eq!(merged.health(), single.health());
        }
    }

    #[test]
    fn push_batch_matches_itemized_push_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let stream: Vec<f64> = (0..700).map(|_| 1e5 + 100.0 * rng.gen::<f64>()).collect();
        for capacity in [50, 200, 650, 1000] {
            let mut itemized = IidMonitor::new(capacity, 0.05);
            for &x in &stream {
                itemized.push(x);
            }
            // Splits shorter than, equal to and longer than the window.
            for chunk in [1, 49, capacity, capacity + 1, stream.len()] {
                let mut batched = IidMonitor::new(capacity, 0.05);
                for piece in stream.chunks(chunk) {
                    batched.push_batch(piece);
                }
                assert_eq!(
                    batched.window, itemized.window,
                    "capacity {capacity} chunk {chunk} diverged"
                );
            }
            // Empty batch is a no-op.
            let before = itemized.window.clone();
            itemized.push_batch(&[]);
            assert_eq!(itemized.window, before);
        }
    }

    #[test]
    fn bad_alpha_clamped() {
        let m = IidMonitor::new(100, 7.0);
        assert_eq!(m.alpha, 0.05);
        let m = IidMonitor::new(10, 0.05);
        assert_eq!(m.capacity(), MIN_WINDOW);
    }
}
