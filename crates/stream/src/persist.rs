//! Checkpoint codecs for the streaming state: the quantile sketches
//! ([`QuantileSketch`], [`KllSketch`] and the kind-tagged [`Sketch`]
//! dispatch), [`IidMonitor`], the block-maxima buffer,
//! [`StreamAnalyzer`] and [`FederatedAnalyzer`] (one record per shard).
//!
//! The wire format is `proxima_mbpta::persist` — a hand-rolled,
//! versioned, length-prefixed little-endian codec with sealed-blob
//! framing (magic + format version byte + payload length + FNV-1a
//! checksum). Everything here is an [`Encode`]/[`Decode`] implementation
//! plus the sealed entry points [`save_analyzer`]/[`load_analyzer`] and
//! [`save_federated`]/[`load_federated`].
//!
//! Exactness contract: a decoded analyzer holds bit-for-bit the encoded
//! one's state — sketch tuples, monitor window, partial block, maxima
//! buffer, convergence bookkeeping, cached snapshot, bootstrap snapshot
//! counter — so an analysis resumed from a checkpoint emits exactly the
//! snapshots, intervals and final pWCET of an uninterrupted run. The
//! proptest battery (`tests/persist_props.rs`) pins this down, along
//! with the adversarial guarantee: truncated, bit-flipped, wrong-magic
//! or wrong-version bytes decode to typed
//! [`MbptaError::Checkpoint`] errors — never a panic, never a silently
//! different state.

use proxima_mbpta::persist::{seal, unseal, Decode, Encode, Reader, Writer};
use proxima_mbpta::MbptaError;

use crate::analyzer::{BootstrapSpec, PwcetSnapshot, StreamAnalyzer, StreamConfig};
use crate::federated::{FederatedAnalyzer, FederatedConfig};
use crate::kll::KllSketch;
use crate::monitor::{IidHealth, IidMonitor, IidStatus};
use crate::sketch::{QuantileSketch, Sketch, SketchKind, Tuple};

/// Magic tag of a sealed [`StreamAnalyzer`] blob.
pub const MAGIC_ANALYZER: [u8; 4] = *b"PXSA";

/// Magic tag of a sealed [`FederatedAnalyzer`] blob.
pub const MAGIC_FEDERATED: [u8; 4] = *b"PXFA";

/// Largest i.i.d.-monitor window the decoder accepts (the default is
/// 500; this is three orders of magnitude of headroom). The bound keeps
/// a crafted capacity from driving a giant up-front allocation before
/// any other validation can reject the blob.
const MAX_MONITOR_CAPACITY: usize = 1 << 20;

/// Serialize a [`StreamAnalyzer`] into a sealed, versioned checkpoint
/// blob.
pub fn save_analyzer(analyzer: &StreamAnalyzer) -> Vec<u8> {
    let mut w = Writer::new();
    analyzer.encode(&mut w);
    seal(MAGIC_ANALYZER, w.into_bytes())
}

/// Restore a [`StreamAnalyzer`] from a [`save_analyzer`] blob.
///
/// # Errors
///
/// Returns [`MbptaError::Checkpoint`] on truncated, corrupted,
/// wrong-magic or wrong-version bytes.
pub fn load_analyzer(bytes: &[u8]) -> Result<StreamAnalyzer, MbptaError> {
    let payload = unseal(bytes, MAGIC_ANALYZER)?;
    let mut r = Reader::new(payload);
    let analyzer = StreamAnalyzer::decode(&mut r)?;
    r.finish()?;
    Ok(analyzer)
}

/// Serialize a [`FederatedAnalyzer`] (per-shard records) into a sealed,
/// versioned checkpoint blob.
pub fn save_federated(analyzer: &FederatedAnalyzer) -> Vec<u8> {
    let mut w = Writer::new();
    analyzer.encode(&mut w);
    seal(MAGIC_FEDERATED, w.into_bytes())
}

/// Restore a [`FederatedAnalyzer`] from a [`save_federated`] blob.
///
/// # Errors
///
/// Returns [`MbptaError::Checkpoint`] on truncated, corrupted,
/// wrong-magic or wrong-version bytes.
pub fn load_federated(bytes: &[u8]) -> Result<FederatedAnalyzer, MbptaError> {
    let payload = unseal(bytes, MAGIC_FEDERATED)?;
    let mut r = Reader::new(payload);
    let analyzer = FederatedAnalyzer::decode(&mut r)?;
    r.finish()?;
    Ok(analyzer)
}

impl Encode for Tuple {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.v);
        w.u64(self.g);
        w.u64(self.delta);
    }
}

impl Decode for Tuple {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(Tuple {
            v: r.f64()?,
            g: r.u64()?,
            delta: r.u64()?,
        })
    }
}

impl Encode for QuantileSketch {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.epsilon);
        self.tuples.encode(w);
        w.u64(self.n);
        w.u64(self.inserts_since_compress);
        w.f64(self.min);
        w.f64(self.max);
        w.f64(self.sum);
    }
}

impl Decode for QuantileSketch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        let epsilon = r.f64()?;
        // Re-validate through the public constructor: a corrupt epsilon
        // must not produce a sketch the insert path would misbehave on.
        let mut sketch = QuantileSketch::new(epsilon)
            .map_err(|e| MbptaError::checkpoint(format!("invalid sketch state: {e}")))?;
        sketch.tuples = Vec::decode(r)?;
        sketch.n = r.u64()?;
        sketch.inserts_since_compress = r.u64()?;
        sketch.min = r.f64()?;
        sketch.max = r.f64()?;
        sketch.sum = r.f64()?;
        // The GK invariant ties the tuple coverages to the count: their
        // sum must be exactly `n`. A mismatch means the bytes do not
        // describe a sketch (decoding must never silently misparse).
        let covered: u64 = sketch
            .tuples
            .iter()
            .fold(0u64, |acc, t| acc.saturating_add(t.g));
        if covered != sketch.n {
            return Err(MbptaError::checkpoint(
                "sketch tuple coverage does not sum to its observation count",
            ));
        }
        Ok(sketch)
    }
}

impl Encode for KllSketch {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.epsilon);
        w.u64(self.n);
        w.f64(self.min);
        w.f64(self.max);
        w.f64(self.sum);
        // The coin counter is state: a restored sketch must continue
        // the exact deterministic flip stream of the original.
        w.u64(self.coins_used);
        w.usize(self.compactors.len());
        for level in &self.compactors {
            w.usize(level.len());
            for &x in level {
                w.f64(x);
            }
        }
    }
}

impl Decode for KllSketch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        let epsilon = r.f64()?;
        // Re-validate through the public constructor: a corrupt epsilon
        // must not produce a sketch whose derived `k` misbehaves.
        let mut sketch = KllSketch::new(epsilon)
            .map_err(|e| MbptaError::checkpoint(format!("invalid sketch state: {e}")))?;
        sketch.n = r.u64()?;
        sketch.min = r.f64()?;
        sketch.max = r.f64()?;
        sketch.sum = r.f64()?;
        sketch.coins_used = r.u64()?;
        let levels = r.usize()?;
        // Level `h` needs 2^h promoted observations to exist, so more
        // than 64 levels is unreachable for any u64 count — and the
        // bound keeps a crafted count from driving allocations.
        if levels == 0 || levels > 64 {
            return Err(MbptaError::checkpoint(
                "kll sketch level count outside the reachable range",
            ));
        }
        sketch.compactors.clear();
        for _ in 0..levels {
            let len = r.usize()?;
            // Each item is 8 payload bytes; a length claiming more
            // items than remaining bytes is a truncation/corruption.
            if len > r.remaining() {
                return Err(MbptaError::checkpoint(
                    "kll level length exceeds the remaining payload",
                ));
            }
            let mut level = Vec::with_capacity(len);
            for _ in 0..len {
                level.push(r.f64()?);
            }
            sketch.compactors.push(level);
        }
        // Compaction conserves weight exactly: Σ len_h·2^h == n for
        // every reachable state. A mismatch means the bytes do not
        // describe a sketch (decoding must never silently misparse).
        if sketch.stored_weight() != u128::from(sketch.n) {
            return Err(MbptaError::checkpoint(
                "kll stored weight does not sum to its observation count",
            ));
        }
        // And every reachable state respects the capacity schedule with
        // a non-empty top level; the insert path assumes both.
        if !sketch.shape_is_canonical() {
            return Err(MbptaError::checkpoint(
                "kll compactor shape is not a reachable sketch state",
            ));
        }
        Ok(sketch)
    }
}

impl Encode for SketchKind {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            SketchKind::Gk => 0,
            SketchKind::Kll => 1,
        });
    }
}

impl Decode for SketchKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        match r.u8()? {
            0 => Ok(SketchKind::Gk),
            1 => Ok(SketchKind::Kll),
            other => Err(MbptaError::checkpoint(format!(
                "unknown sketch kind tag {other}"
            ))),
        }
    }
}

impl Encode for Sketch {
    fn encode(&self, w: &mut Writer) {
        self.kind().encode(w);
        match self {
            Sketch::Gk(s) => s.encode(w),
            Sketch::Kll(s) => s.encode(w),
        }
    }
}

impl Decode for Sketch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        match SketchKind::decode(r)? {
            SketchKind::Gk => QuantileSketch::decode(r).map(Sketch::Gk),
            SketchKind::Kll => KllSketch::decode(r).map(Sketch::Kll),
        }
    }
}

impl Encode for IidMonitor {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.capacity);
        w.f64(self.alpha);
        w.usize(self.window.len());
        for &x in &self.window {
            w.f64(x);
        }
    }
}

impl Decode for IidMonitor {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        let capacity = r.usize()?;
        let alpha = r.f64()?;
        // Validate instead of constructing through `new`: `new` clamps
        // out-of-range values (a state that only exists after clamping
        // was never produced by a real monitor) and pre-allocates the
        // window — which a crafted capacity must not be able to turn
        // into an allocation panic. The FNV checksum is not a MAC, so
        // the decoder cannot trust any field.
        if !(crate::monitor::MIN_WINDOW..=MAX_MONITOR_CAPACITY).contains(&capacity) {
            return Err(MbptaError::checkpoint(
                "monitor capacity outside the constructible range",
            ));
        }
        if !(alpha > 0.0 && alpha <= 0.5) {
            return Err(MbptaError::checkpoint(
                "monitor alpha outside the constructible range",
            ));
        }
        let mut monitor = IidMonitor {
            window: std::collections::VecDeque::new(),
            capacity,
            alpha,
        };
        let len = r.usize()?;
        if len > capacity {
            return Err(MbptaError::checkpoint(
                "monitor window longer than its capacity",
            ));
        }
        if len > r.remaining() {
            return Err(MbptaError::checkpoint(
                "monitor window length exceeds the remaining payload",
            ));
        }
        for _ in 0..len {
            monitor.window.push_back(r.f64()?);
        }
        Ok(monitor)
    }
}

impl Encode for BootstrapSpec {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.level);
        w.usize(self.resamples);
        w.u64(self.seed);
    }
}

impl Decode for BootstrapSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(BootstrapSpec {
            level: r.f64()?,
            resamples: r.usize()?,
            seed: r.u64()?,
        })
    }
}

impl Encode for StreamConfig {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.block_size);
        w.usize(self.refit_every_blocks);
        w.f64(self.target_p);
        w.f64(self.rel_tol);
        w.usize(self.stable_snapshots);
        w.usize(self.min_blocks);
        w.f64(self.alpha);
        w.usize(self.monitor_window);
        w.f64(self.sketch_epsilon);
        // Format v3: the sketch-kind byte (v2 configs were GK-only).
        self.sketch.encode(w);
        self.bootstrap.encode(w);
    }
}

impl Decode for StreamConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        let config = StreamConfig {
            block_size: r.usize()?,
            refit_every_blocks: r.usize()?,
            target_p: r.f64()?,
            rel_tol: r.f64()?,
            stable_snapshots: r.usize()?,
            min_blocks: r.usize()?,
            alpha: r.f64()?,
            monitor_window: r.usize()?,
            sketch_epsilon: r.f64()?,
            sketch: SketchKind::decode(r)?,
            bootstrap: Option::decode(r)?,
        };
        config
            .validate()
            .map_err(|e| MbptaError::checkpoint(format!("invalid stream configuration: {e}")))?;
        // `validate` does not bound the window (any size is analytically
        // fine), but the decoder must: `StreamAnalyzer::new` on this
        // config pre-allocates a monitor window of this capacity.
        if config.monitor_window > MAX_MONITOR_CAPACITY {
            return Err(MbptaError::checkpoint(
                "stream configuration monitor window exceeds the decoder bound",
            ));
        }
        Ok(config)
    }
}

impl Encode for IidStatus {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            IidStatus::Warming => 0,
            IidStatus::Healthy => 1,
            IidStatus::Suspect => 2,
        });
    }
}

impl Decode for IidStatus {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        match r.u8()? {
            0 => Ok(IidStatus::Warming),
            1 => Ok(IidStatus::Healthy),
            2 => Ok(IidStatus::Suspect),
            other => Err(MbptaError::checkpoint(format!(
                "unknown iid status tag {other}"
            ))),
        }
    }
}

impl Encode for IidHealth {
    fn encode(&self, w: &mut Writer) {
        self.status.encode(w);
        w.usize(self.window_len);
        self.max_abs_autocorr.encode(w);
        self.autocorr_band.encode(w);
        self.ljung_box_p.encode(w);
        self.runs_p.encode(w);
    }
}

impl Decode for IidHealth {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(IidHealth {
            status: IidStatus::decode(r)?,
            window_len: r.usize()?,
            max_abs_autocorr: Option::decode(r)?,
            autocorr_band: Option::decode(r)?,
            ljung_box_p: Option::decode(r)?,
            runs_p: Option::decode(r)?,
        })
    }
}

impl Encode for PwcetSnapshot {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.n);
        w.usize(self.blocks);
        w.f64(self.pwcet);
        self.distribution.encode(w);
        self.ci.encode(w);
        self.convergence_delta.encode(w);
        self.iid_status.encode(w);
        w.bool(self.converged);
        w.f64(self.high_watermark);
    }
}

impl Decode for PwcetSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(PwcetSnapshot {
            n: r.usize()?,
            blocks: r.usize()?,
            pwcet: r.f64()?,
            distribution: Decode::decode(r)?,
            ci: Option::decode(r)?,
            convergence_delta: Option::decode(r)?,
            iid_status: IidHealth::decode(r)?,
            converged: r.bool()?,
            high_watermark: r.f64()?,
        })
    }
}

impl Encode for StreamAnalyzer {
    fn encode(&self, w: &mut Writer) {
        self.config.encode(w);
        self.sketch.encode(w);
        self.monitor.encode(w);
        w.usize(self.n);
        w.f64(self.current_block_max);
        w.usize(self.current_block_len);
        self.maxima.encode(w);
        w.usize(self.blocks_since_refit);
        w.usize(self.snapshots);
        self.last_estimate.encode(w);
        w.usize(self.stable_run);
        self.converged_at.encode(w);
        self.last_fit_error.encode(w);
        self.last_snapshot.encode(w);
    }
}

impl Decode for StreamAnalyzer {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        let config = StreamConfig::decode(r)?;
        // `new` re-runs the config validation and builds the empty
        // sketch/monitor, which the decoded states then replace.
        let mut analyzer = StreamAnalyzer::new(config)
            .map_err(|e| MbptaError::checkpoint(format!("invalid analyzer state: {e}")))?;
        analyzer.sketch = Sketch::decode(r)?;
        // The sketch record is kind-tagged independently of the config;
        // a disagreement means the bytes do not describe one analyzer.
        if analyzer.sketch.kind() != analyzer.config.sketch {
            return Err(MbptaError::checkpoint(
                "analyzer sketch kind does not match its configuration",
            ));
        }
        analyzer.monitor = IidMonitor::decode(r)?;
        analyzer.n = r.usize()?;
        analyzer.current_block_max = r.f64()?;
        analyzer.current_block_len = r.usize()?;
        analyzer.maxima = Vec::decode(r)?;
        analyzer.blocks_since_refit = r.usize()?;
        analyzer.snapshots = r.usize()?;
        analyzer.last_estimate = Option::decode(r)?;
        analyzer.stable_run = r.usize()?;
        analyzer.converged_at = Option::decode(r)?;
        analyzer.last_fit_error = Option::decode(r)?;
        analyzer.last_snapshot = Option::decode(r)?;
        if analyzer.current_block_len >= analyzer.config.block_size {
            return Err(MbptaError::checkpoint(
                "analyzer partial block is not shorter than the block size",
            ));
        }
        // Checked arithmetic: a crafted block size near usize::MAX must
        // neither panic (debug) nor wrap into a passing check (release).
        let accounted = analyzer
            .maxima
            .len()
            .checked_mul(analyzer.config.block_size)
            .and_then(|complete| complete.checked_add(analyzer.current_block_len));
        if accounted != Some(analyzer.n) {
            return Err(MbptaError::checkpoint(
                "analyzer block accounting does not match its measurement count",
            ));
        }
        Ok(analyzer)
    }
}

impl Encode for FederatedConfig {
    fn encode(&self, w: &mut Writer) {
        self.stream.encode(w);
        w.usize(self.shards);
        w.usize(self.shard_len);
    }
}

impl Decode for FederatedConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        let config = FederatedConfig {
            stream: StreamConfig::decode(r)?,
            shards: r.usize()?,
            shard_len: r.usize()?,
        };
        config
            .validate()
            .map_err(|e| MbptaError::checkpoint(format!("invalid federated configuration: {e}")))?;
        Ok(config)
    }
}

impl Encode for FederatedAnalyzer {
    fn encode(&self, w: &mut Writer) {
        self.config.encode(w);
        self.shards.encode(w);
        w.usize(self.shard_len);
        w.usize(self.n);
    }
}

impl Decode for FederatedAnalyzer {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        let config = FederatedConfig::decode(r)?;
        let shards: Vec<StreamAnalyzer> = Vec::decode(r)?;
        if shards.len() != config.shards {
            return Err(MbptaError::checkpoint(
                "federated shard record count does not match its configuration",
            ));
        }
        for shard in &shards {
            if shard.config != config.stream {
                return Err(MbptaError::checkpoint(
                    "federated shard record carries a foreign stream configuration",
                ));
            }
        }
        let shard_len = r.usize()?;
        let n = r.usize()?;
        // Every constructible analyzer derives its routing length from
        // the config; a blob disagreeing with it would route post-resume
        // pushes onto the wrong shards — a silent misparse.
        if shard_len != config.effective_shard_len() {
            return Err(MbptaError::checkpoint(
                "federated shard length does not match its configuration",
            ));
        }
        let total = shards
            .iter()
            .try_fold(0usize, |acc, s| acc.checked_add(s.len()));
        if total != Some(n) {
            return Err(MbptaError::checkpoint(
                "federated shard lengths do not sum to the analyzer's count",
            ));
        }
        Ok(FederatedAnalyzer {
            config,
            shards,
            shard_len,
            n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn times(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
            .collect()
    }

    fn stream_config() -> StreamConfig {
        StreamConfig {
            block_size: 25,
            refit_every_blocks: 4,
            ..StreamConfig::default()
        }
    }

    /// Field-wise equality for analyzers (`StreamAnalyzer` does not
    /// derive `PartialEq` because `MbptaError` comparison is structural;
    /// here structural is exactly what we want).
    fn assert_analyzers_identical(a: &StreamAnalyzer, b: &StreamAnalyzer) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.sketch, b.sketch);
        assert_eq!(a.monitor.window, b.monitor.window);
        assert_eq!(a.monitor.capacity, b.monitor.capacity);
        assert_eq!(a.monitor.alpha, b.monitor.alpha);
        assert_eq!(a.n, b.n);
        assert_eq!(a.current_block_max.to_bits(), b.current_block_max.to_bits());
        assert_eq!(a.current_block_len, b.current_block_len);
        assert_eq!(a.maxima, b.maxima);
        assert_eq!(a.blocks_since_refit, b.blocks_since_refit);
        assert_eq!(a.snapshots, b.snapshots);
        assert_eq!(a.last_estimate, b.last_estimate);
        assert_eq!(a.stable_run, b.stable_run);
        assert_eq!(a.converged_at, b.converged_at);
        assert_eq!(a.last_fit_error, b.last_fit_error);
        assert_eq!(a.last_snapshot, b.last_snapshot);
    }

    #[test]
    fn analyzer_round_trip_is_identity_mid_block() {
        // 1010 samples at block 25 leaves a 10-sample partial block and
        // live convergence bookkeeping — all of it must survive.
        let mut analyzer = StreamAnalyzer::new(stream_config()).unwrap();
        analyzer.extend(times(1010, 1)).unwrap();
        let blob = save_analyzer(&analyzer);
        let restored = load_analyzer(&blob).unwrap();
        assert_analyzers_identical(&analyzer, &restored);
        // Canonical encoding: re-encoding the restored state is
        // byte-identical.
        assert_eq!(save_analyzer(&restored), blob);
    }

    #[test]
    fn resumed_analyzer_continues_bit_identically() {
        let data = times(4000, 2);
        let cut = 1337;
        let mut uninterrupted = StreamAnalyzer::new(stream_config()).unwrap();
        let mut first = StreamAnalyzer::new(stream_config()).unwrap();
        let pre: Vec<_> = uninterrupted.extend(data[..cut].iter().copied()).unwrap();
        assert_eq!(first.extend(data[..cut].iter().copied()).unwrap(), pre);
        let mut resumed = load_analyzer(&save_analyzer(&first)).unwrap();
        drop(first); // the original is gone — only the bytes survive
        let tail_a = uninterrupted.extend(data[cut..].iter().copied()).unwrap();
        let tail_b = resumed.extend(data[cut..].iter().copied()).unwrap();
        assert_eq!(tail_a, tail_b, "post-resume snapshots diverged");
        assert_eq!(
            uninterrupted.finish().unwrap(),
            resumed.finish().unwrap(),
            "final pWCET diverged after resume"
        );
    }

    #[test]
    fn degenerate_fit_error_survives_the_round_trip() {
        let mut analyzer = StreamAnalyzer::new(StreamConfig {
            block_size: 10,
            refit_every_blocks: 1,
            ..StreamConfig::default()
        })
        .unwrap();
        for _ in 0..200 {
            analyzer.push(500.0).unwrap();
        }
        assert!(analyzer.last_fit_error.is_some());
        let restored = load_analyzer(&save_analyzer(&analyzer)).unwrap();
        assert_eq!(restored.last_fit_error, analyzer.last_fit_error);
    }

    #[test]
    fn federated_round_trip_preserves_every_shard() {
        let config = FederatedConfig::new(stream_config(), 4).balanced_for(3000);
        let mut fed = FederatedAnalyzer::new(config).unwrap();
        for x in times(3000, 3) {
            fed.push(x).unwrap();
        }
        let blob = save_federated(&fed);
        let mut restored = load_federated(&blob).unwrap();
        assert_eq!(restored.len(), fed.len());
        assert_eq!(restored.shard_len(), fed.shard_len());
        for (a, b) in fed.shards().iter().zip(restored.shards()) {
            assert_analyzers_identical(a, b);
        }
        assert_eq!(
            restored.finish().unwrap(),
            fed.clone().finish().unwrap(),
            "folded pWCET diverged after restore"
        );
        assert_eq!(save_federated(&load_federated(&blob).unwrap()), blob);
    }

    #[test]
    fn wrong_magic_and_cross_type_blobs_are_rejected() {
        let mut analyzer = StreamAnalyzer::new(stream_config()).unwrap();
        analyzer.extend(times(500, 4)).unwrap();
        let blob = save_analyzer(&analyzer);
        // A stream-analyzer blob is not a federated blob.
        assert!(matches!(
            load_federated(&blob),
            Err(MbptaError::Checkpoint { .. })
        ));
        // Nor is an arbitrary sealed payload an analyzer.
        let alien = proxima_mbpta::persist::seal(MAGIC_ANALYZER, vec![9; 32]);
        assert!(matches!(
            load_analyzer(&alien),
            Err(MbptaError::Checkpoint { .. })
        ));
    }

    #[test]
    fn sketch_coverage_mismatch_is_detected() {
        let mut sketch = QuantileSketch::new(0.01).unwrap();
        for x in times(300, 5) {
            sketch.insert(x);
        }
        let mut w = Writer::new();
        sketch.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = QuantileSketch::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, sketch);
        // Lie about the count: the coverage check must fire.
        sketch.n += 1;
        let mut w = Writer::new();
        sketch.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            QuantileSketch::decode(&mut r),
            Err(MbptaError::Checkpoint { .. })
        ));
    }

    fn kll_stream_config() -> StreamConfig {
        StreamConfig {
            sketch: SketchKind::Kll,
            ..stream_config()
        }
    }

    #[test]
    fn kll_analyzer_round_trip_is_identity_mid_block() {
        let mut analyzer = StreamAnalyzer::new(kll_stream_config()).unwrap();
        analyzer.extend(times(1010, 1)).unwrap();
        let blob = save_analyzer(&analyzer);
        let restored = load_analyzer(&blob).unwrap();
        assert_analyzers_identical(&analyzer, &restored);
        assert_eq!(save_analyzer(&restored), blob);
    }

    #[test]
    fn resumed_kll_analyzer_continues_bit_identically() {
        let data = times(4000, 2);
        let cut = 1337;
        let mut uninterrupted = StreamAnalyzer::new(kll_stream_config()).unwrap();
        let mut first = StreamAnalyzer::new(kll_stream_config()).unwrap();
        let pre: Vec<_> = uninterrupted.extend(data[..cut].iter().copied()).unwrap();
        assert_eq!(first.extend(data[..cut].iter().copied()).unwrap(), pre);
        let mut resumed = load_analyzer(&save_analyzer(&first)).unwrap();
        drop(first);
        let tail_a = uninterrupted.extend(data[cut..].iter().copied()).unwrap();
        let tail_b = resumed.extend(data[cut..].iter().copied()).unwrap();
        assert_eq!(tail_a, tail_b, "post-resume snapshots diverged");
        assert_eq!(
            uninterrupted.finish().unwrap(),
            resumed.finish().unwrap(),
            "final pWCET diverged after resume"
        );
        // The restored coin counter must continue the original stream:
        // identical end states imply identical subsequent compactions.
        assert_analyzers_identical(&uninterrupted, &resumed);
    }

    #[test]
    fn kll_weight_mismatch_is_detected() {
        let mut sketch = KllSketch::new(0.01).unwrap();
        for x in times(3000, 5) {
            sketch.insert(x);
        }
        let mut w = Writer::new();
        sketch.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = KllSketch::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, sketch);
        // Lie about the count: the weight-conservation check must fire.
        sketch.n += 1;
        let mut w = Writer::new();
        sketch.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            KllSketch::decode(&mut r),
            Err(MbptaError::Checkpoint { .. })
        ));
    }

    #[test]
    fn sketch_kind_mismatching_its_config_is_detected() {
        // A GK-configured analyzer whose sketch record is KLL-tagged is
        // not a state the system can reach; the decoder must say so.
        let mut analyzer = StreamAnalyzer::new(stream_config()).unwrap();
        analyzer.extend(times(500, 6)).unwrap();
        let n = analyzer.sketch.len();
        let mut kll = KllSketch::new(analyzer.config.sketch_epsilon).unwrap();
        for x in times(n as usize, 6) {
            kll.insert(x);
        }
        analyzer.sketch = Sketch::Kll(kll);
        let blob = save_analyzer(&analyzer);
        assert!(matches!(
            load_analyzer(&blob),
            Err(MbptaError::Checkpoint { .. })
        ));
    }
}
