//! Property-based battery for the checkpoint codec.
//!
//! Three claims, each fuzzed:
//!
//! 1. **Round-trip identity** — encode→decode is the identity for
//!    arbitrary sketch / monitor / analyzer / federated states, and the
//!    encoding is canonical (decode→re-encode is byte-identical).
//! 2. **Resume exactness** — an analyzer restored from a checkpoint at
//!    an arbitrary cut point continues bit-identically to the
//!    uninterrupted run: same snapshots, same bootstrap intervals, same
//!    final pWCET.
//! 3. **Adversarial robustness** — truncations, single-bit flips, wrong
//!    magics and wrong version bytes all decode to typed
//!    `MbptaError::Checkpoint` errors. No panics, no silent misparses.

use proptest::prelude::*;
use proxima_mbpta::persist::{Decode, Encode, Reader, Writer, FORMAT_VERSION};
use proxima_mbpta::MbptaError;
use proxima_stream::persist::{load_analyzer, load_federated, save_analyzer, save_federated};
use proxima_stream::{
    FederatedAnalyzer, FederatedConfig, IidMonitor, QuantileSketch, StreamAnalyzer, StreamConfig,
};

/// Deterministic synthetic campaign (same shape as the other stream
/// tests: base latency + summed uniform jitter).
fn campaign(n: usize, seed: u64) -> Vec<f64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
        .collect()
}

fn stream_config(block: usize, every: usize) -> StreamConfig {
    StreamConfig {
        block_size: block,
        refit_every_blocks: every,
        ..StreamConfig::default()
    }
}

proptest! {
    /// Sketch encode→decode is the identity (strict `PartialEq` on the
    /// whole structure, tuples included), and the encoding is canonical.
    #[test]
    fn sketch_round_trip_identity(
        sample in prop::collection::vec(0.0f64..1e6, 1..2_000),
        eps_mil in 1usize..100,
    ) {
        let mut sketch = QuantileSketch::new(eps_mil as f64 / 1000.0).unwrap();
        for &x in &sample {
            sketch.insert(x);
        }
        let mut w = Writer::new();
        sketch.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = QuantileSketch::decode(&mut r).unwrap();
        prop_assert!(r.remaining() == 0);
        prop_assert_eq!(&decoded, &sketch);
        let mut w2 = Writer::new();
        decoded.encode(&mut w2);
        prop_assert_eq!(w2.into_bytes(), bytes);
    }

    /// Monitor encode→decode preserves the window exactly — including
    /// windows shorter than, equal to, and overflowing the capacity.
    #[test]
    fn monitor_round_trip_identity(
        sample in prop::collection::vec(0.0f64..1e6, 0..1_200),
        capacity in 50usize..600,
    ) {
        let mut monitor = IidMonitor::new(capacity, 0.05);
        for &x in &sample {
            monitor.push(x);
        }
        let mut w = Writer::new();
        monitor.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = IidMonitor::decode(&mut r).unwrap();
        prop_assert!(r.remaining() == 0);
        prop_assert_eq!(decoded.len(), monitor.len());
        prop_assert_eq!(decoded.capacity(), monitor.capacity());
        prop_assert_eq!(decoded.health(), monitor.health());
    }

    /// Analyzer round-trip is the identity for random ingest lengths —
    /// partial blocks, live convergence state, cached snapshots and all
    /// — and the encoding is canonical.
    #[test]
    fn analyzer_round_trip_identity(
        n in 0usize..3_000,
        seed in 0u64..20,
        block in 10usize..60,
    ) {
        let mut analyzer = StreamAnalyzer::new(stream_config(block, 3)).unwrap();
        analyzer.extend(campaign(n, seed)).unwrap();
        let blob = save_analyzer(&analyzer);
        let restored = load_analyzer(&blob).unwrap();
        prop_assert_eq!(restored.len(), analyzer.len());
        prop_assert_eq!(restored.blocks(), analyzer.blocks());
        prop_assert_eq!(restored.maxima(), analyzer.maxima());
        prop_assert_eq!(restored.sketch(), analyzer.sketch());
        prop_assert_eq!(restored.high_watermark(), analyzer.high_watermark());
        prop_assert_eq!(restored.converged_at(), analyzer.converged_at());
        prop_assert_eq!(restored.snapshots_emitted(), analyzer.snapshots_emitted());
        prop_assert_eq!(restored.last_snapshot(), analyzer.last_snapshot());
        prop_assert_eq!(save_analyzer(&restored), blob);
    }

    /// Resume-at-any-cut-point equals the uninterrupted run bit for bit:
    /// identical snapshot streams after the cut, identical final pWCET,
    /// identical bootstrap intervals.
    #[test]
    fn resume_at_any_cut_equals_uninterrupted(
        cut in 0usize..3_000,
        seed in 0u64..10,
    ) {
        let data = campaign(3_000, seed);
        let config = stream_config(25, 4);
        let mut uninterrupted = StreamAnalyzer::new(config.clone()).unwrap();
        let mut prefix = StreamAnalyzer::new(config).unwrap();
        uninterrupted.extend(data[..cut].iter().copied()).unwrap();
        prefix.extend(data[..cut].iter().copied()).unwrap();
        let mut resumed = load_analyzer(&save_analyzer(&prefix)).unwrap();
        let tail_a = uninterrupted.extend(data[cut..].iter().copied()).unwrap();
        let tail_b = resumed.extend(data[cut..].iter().copied()).unwrap();
        prop_assert_eq!(tail_a, tail_b);
        let fin_a = uninterrupted.finish();
        let fin_b = resumed.finish();
        match (fin_a, fin_b) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "finish divergence: {a:?} vs {b:?}"),
        }
    }

    /// Federated resume: checkpoint the sharded analyzer at an arbitrary
    /// cut, restore, stream the rest — the fold is bit-identical to the
    /// uninterrupted sharded run at every shard count.
    #[test]
    fn federated_resume_at_any_cut_is_exact(
        cut in 0usize..3_000,
        shards in 1usize..5,
        seed in 0u64..8,
    ) {
        let data = campaign(3_000, seed);
        let config = FederatedConfig::new(stream_config(25, 4), shards).balanced_for(data.len());
        let mut uninterrupted = FederatedAnalyzer::new(config.clone()).unwrap();
        let mut prefix = FederatedAnalyzer::new(config).unwrap();
        for &x in &data[..cut] {
            uninterrupted.push(x).unwrap();
            prefix.push(x).unwrap();
        }
        let mut resumed = load_federated(&save_federated(&prefix)).unwrap();
        for &x in &data[cut..] {
            uninterrupted.push(x).unwrap();
            resumed.push(x).unwrap();
        }
        prop_assert_eq!(resumed.len(), uninterrupted.len());
        for (a, b) in uninterrupted.shards().iter().zip(resumed.shards()) {
            prop_assert_eq!(a.len(), b.len());
            prop_assert_eq!(a.maxima(), b.maxima());
        }
        prop_assert_eq!(
            uninterrupted.finish().unwrap(),
            resumed.finish().unwrap()
        );
    }

    /// Truncating a checkpoint anywhere yields a typed
    /// `MbptaError::Checkpoint` — never a panic, never an `Ok`.
    #[test]
    fn truncated_checkpoints_are_typed_errors(
        n in 100usize..1_500,
        seed in 0u64..10,
        frac in 0.0f64..1.0,
    ) {
        let mut analyzer = StreamAnalyzer::new(stream_config(25, 4)).unwrap();
        analyzer.extend(campaign(n, seed)).unwrap();
        let blob = save_analyzer(&analyzer);
        let cut = ((blob.len() as f64) * frac) as usize;
        prop_assume!(cut < blob.len());
        match load_analyzer(&blob[..cut]) {
            Err(MbptaError::Checkpoint { .. }) => {}
            other => prop_assert!(false, "truncation at {cut} gave {other:?}"),
        }
    }

    /// Flipping any single bit anywhere in a checkpoint is caught by the
    /// envelope (magic/version/length checks or the FNV-1a checksum).
    #[test]
    fn bit_flipped_checkpoints_are_typed_errors(
        n in 100usize..1_000,
        seed in 0u64..10,
        frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let mut analyzer = StreamAnalyzer::new(stream_config(25, 4)).unwrap();
        analyzer.extend(campaign(n, seed)).unwrap();
        let mut blob = save_analyzer(&analyzer);
        let byte = ((blob.len() as f64) * frac) as usize % blob.len();
        blob[byte] ^= 1 << bit;
        match load_analyzer(&blob) {
            Err(MbptaError::Checkpoint { .. }) => {}
            other => prop_assert!(false, "flip at byte {byte} bit {bit} gave {other:?}"),
        }
    }

    /// Random garbage — including garbage wearing the right magic — is
    /// rejected with a typed error.
    #[test]
    fn random_bytes_never_panic_the_decoder(
        junk in prop::collection::vec(0usize..256, 0..300),
        wear_magic in 0usize..2,
    ) {
        let mut bytes: Vec<u8> = junk.iter().map(|&b| b as u8).collect();
        if wear_magic == 1 && bytes.len() >= 5 {
            bytes[..4].copy_from_slice(b"PXSA");
            bytes[4] = FORMAT_VERSION;
        }
        match load_analyzer(&bytes) {
            Err(MbptaError::Checkpoint { .. }) => {}
            Ok(_) => prop_assert!(false, "garbage decoded to an analyzer"),
            Err(other) => prop_assert!(false, "non-checkpoint error {other:?}"),
        }
    }
}

#[test]
fn wrong_version_byte_is_rejected_everywhere() {
    let mut analyzer = StreamAnalyzer::new(stream_config(25, 4)).unwrap();
    analyzer.extend(campaign(600, 1)).unwrap();
    let mut blob = save_analyzer(&analyzer);
    for version in [0u8, FORMAT_VERSION + 1, 0x7F, 0xFF] {
        blob[4] = version;
        let err = load_analyzer(&blob).unwrap_err();
        assert!(matches!(err, MbptaError::Checkpoint { .. }));
        assert!(err.to_string().contains("version"), "{err}");
    }
}
