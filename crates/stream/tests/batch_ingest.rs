//! Property tests of the bulk ingestion path: `push_batch` must be
//! **bit-identical** to folding the per-item `push` — sketch tuples,
//! monitor window, emitted snapshots and checkpoint bytes — at every
//! random batch split, `jobs` setting and shard count, and the GK
//! rank-error bound must survive batched compaction.

use proptest::prelude::*;
use proxima_mbpta::session::Tagged;
use proxima_mbpta::MbptaConfig;
use proxima_stream::persist::{save_analyzer, save_federated};
use proxima_stream::{
    FederatedAnalyzer, FederatedConfig, IidMonitor, QuantileSketch, SessionFederatedExt,
    SessionStreamExt, StreamAnalyzer, StreamConfig,
};

/// Deterministic synthetic campaign: base latency plus summed uniform
/// jitter terms (bounded, light-tailed — the MBPTA-compliant shape).
fn campaign(n: usize, seed: u64) -> Vec<f64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
        .collect()
}

/// Turn random cut points into contiguous batch bounds over `len`
/// measurements (possibly empty batches included — they must be no-ops).
fn split_bounds(cuts: &[usize], len: usize) -> Vec<usize> {
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (len + 1)).collect();
    bounds.push(0);
    bounds.push(len);
    bounds.sort_unstable();
    bounds
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        block_size: 25,
        refit_every_blocks: 4,
        ..StreamConfig::default()
    }
}

proptest! {
    /// Sketch state (tuples, counters, side stats) is identical between
    /// batched and itemized ingest for any stream and any batch split.
    #[test]
    fn sketch_insert_batch_equals_itemized(
        sample in prop::collection::vec(0.0f64..1e6, 100..2_000),
        cuts in prop::collection::vec(0usize..2_000, 0..8),
        eps_idx in 0usize..3,
    ) {
        let eps = [0.001, 0.02, 0.2][eps_idx];
        let mut itemized = QuantileSketch::new(eps).unwrap();
        for &x in &sample {
            itemized.insert(x);
        }
        let mut batched = QuantileSketch::new(eps).unwrap();
        for w in split_bounds(&cuts, sample.len()).windows(2) {
            batched.insert_batch(&sample[w[0]..w[1]]);
        }
        // PartialEq covers epsilon, tuples, n, compress counter, min,
        // max and sum — the full logical state.
        prop_assert_eq!(&batched, &itemized);
    }

    /// The GK `εn` rank bound holds under batched compaction for any
    /// stream, split and query level.
    #[test]
    fn batched_compaction_keeps_rank_bound(
        sample in prop::collection::vec(0.0f64..1e6, 200..2_000),
        cuts in prop::collection::vec(0usize..2_000, 0..8),
        phi in 0.0f64..1.0,
    ) {
        let eps = 0.02;
        let mut sketch = QuantileSketch::new(eps).unwrap();
        for w in split_bounds(&cuts, sample.len()).windows(2) {
            sketch.insert_batch(&sample[w[0]..w[1]]);
        }
        let est = sketch.quantile(phi).unwrap();
        let mut sorted = sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = sorted.partition_point(|&v| v < est) as f64;
        let hi = sorted.partition_point(|&v| v <= est) as f64;
        let target = phi * sample.len() as f64;
        let slack = eps * sample.len() as f64 + 1.0;
        let dist = if target < lo {
            lo - target
        } else if target > hi {
            target - hi
        } else {
            0.0
        };
        prop_assert!(dist <= slack, "phi={phi} dist={dist} slack={slack}");
    }

    /// The monitor window after a batched feed equals the itemized one
    /// for any capacity and split (windows are compared through the
    /// Debug representation, which prints the full deque).
    #[test]
    fn monitor_push_batch_equals_itemized(
        sample in prop::collection::vec(0.0f64..1e6, 1..1_500),
        cuts in prop::collection::vec(0usize..1_500, 0..8),
        capacity in 10usize..700,
    ) {
        let mut itemized = IidMonitor::new(capacity, 0.05);
        for &x in &sample {
            itemized.push(x);
        }
        let mut batched = IidMonitor::new(capacity, 0.05);
        for w in split_bounds(&cuts, sample.len()).windows(2) {
            batched.push_batch(&sample[w[0]..w[1]]);
        }
        prop_assert_eq!(format!("{batched:?}"), format!("{itemized:?}"));
    }

    /// Analyzer: emitted snapshot sequence and checkpoint bytes are
    /// identical between batched and itemized ingest at any split.
    #[test]
    fn analyzer_push_batch_equals_itemized(
        seed in 0u64..8,
        cuts in prop::collection::vec(0usize..1_200, 0..8),
    ) {
        let times = campaign(1_200, seed);
        let mut itemized = StreamAnalyzer::new(stream_config()).unwrap();
        let reference_snaps = itemized.extend(times.iter().copied()).unwrap();
        let mut batched = StreamAnalyzer::new(stream_config()).unwrap();
        let mut snaps = Vec::new();
        for w in split_bounds(&cuts, times.len()).windows(2) {
            snaps.extend(batched.push_batch(&times[w[0]..w[1]]).unwrap());
        }
        prop_assert_eq!(snaps, reference_snaps);
        prop_assert_eq!(save_analyzer(&batched), save_analyzer(&itemized));
    }

    /// Federated analyzer: same contract across shard counts {1, 4} (and
    /// an odd 3) — shard routing, snapshots and checkpoint bytes.
    #[test]
    fn federated_push_batch_equals_itemized(
        seed in 0u64..6,
        cuts in prop::collection::vec(0usize..1_400, 0..8),
        shards_idx in 0usize..3,
    ) {
        let shards = [1usize, 3, 4][shards_idx];
        let times = campaign(1_400, seed);
        let config = FederatedConfig {
            stream: stream_config(),
            shards,
            shard_len: 300,
        };
        let mut itemized = FederatedAnalyzer::new(config.clone()).unwrap();
        let mut reference_snaps = Vec::new();
        for &x in &times {
            reference_snaps.extend(itemized.push(x).unwrap());
        }
        let mut batched = FederatedAnalyzer::new(config).unwrap();
        let mut snaps = Vec::new();
        for w in split_bounds(&cuts, times.len()).windows(2) {
            snaps.extend(batched.push_batch(&times[w[0]..w[1]]).unwrap());
        }
        prop_assert_eq!(snaps, reference_snaps);
        prop_assert_eq!(save_federated(&batched), save_federated(&itemized));
    }

    /// Session: snapshot stream, checkpoint bytes and merged verdicts are
    /// identical between batched and itemized feeds at any batch split,
    /// `jobs` in {1, 8} and shards in {1, 4} — the correctness spine of
    /// the bulk path, scheduler bookkeeping included.
    #[test]
    fn session_push_batch_equals_itemized(
        seed in 0u64..5,
        cuts in prop::collection::vec(0usize..1_400, 0..8),
        jobs_idx in 0usize..2,
        shards_idx in 0usize..2,
        every in 0usize..3,
    ) {
        let jobs = [1usize, 8][jobs_idx];
        let shards = [1usize, 4][shards_idx];
        let every = [0usize, 1, 100][every];
        let times = campaign(1_400, seed);
        let build = |jobs: usize| {
            let builder = MbptaConfig::default()
                .session()
                .snapshot_every(every)
                .jobs(jobs);
            if shards == 1 {
                builder.build_stream_with(stream_config()).map(|s| (Some(s), None))
            } else {
                builder
                    .build_federated_with(FederatedConfig {
                        stream: stream_config(),
                        shards,
                        shard_len: 300,
                    })
                    .map(|s| (None, Some(s)))
            }
        };
        // Generic driver over either factory, itemized vs batched.
        macro_rules! drive {
            ($session:expr) => {{
                let session = $session;
                let mut itemized_snaps = Vec::new();
                for &x in &times {
                    itemized_snaps.extend(session.push(Tagged::new("chan", x)).unwrap());
                }
                (itemized_snaps, session.checkpoint().unwrap())
            }};
        }
        macro_rules! drive_batched {
            ($session:expr) => {{
                let session = $session;
                let mut snaps = Vec::new();
                for w in split_bounds(&cuts, times.len()).windows(2) {
                    snaps.extend(session.push_batch("chan", &times[w[0]..w[1]]).unwrap());
                }
                (snaps, session.checkpoint().unwrap())
            }};
        }
        match (build(jobs).unwrap(), build(jobs).unwrap()) {
            ((Some(mut a), None), (Some(mut b), None)) => {
                let (ref_snaps, ref_ckpt) = drive!(&mut a);
                let (snaps, ckpt) = drive_batched!(&mut b);
                prop_assert_eq!(snaps, ref_snaps);
                prop_assert_eq!(ckpt, ref_ckpt);
                let (va, vb) = (a.merge(), b.merge());
                prop_assert_eq!(
                    format!("{:?}", va.verdict("chan")),
                    format!("{:?}", vb.verdict("chan"))
                );
            }
            ((None, Some(mut a)), (None, Some(mut b))) => {
                let (ref_snaps, ref_ckpt) = drive!(&mut a);
                let (snaps, ckpt) = drive_batched!(&mut b);
                prop_assert_eq!(snaps, ref_snaps);
                prop_assert_eq!(ckpt, ref_ckpt);
                let (va, vb) = (a.merge(), b.merge());
                prop_assert_eq!(
                    format!("{:?}", va.verdict("chan")),
                    format!("{:?}", vb.verdict("chan"))
                );
            }
            _ => unreachable!("builder returns one variant"),
        }
    }
}
