//! Property-based tests of the streaming MBPTA subsystem.
//!
//! The two load-bearing claims:
//!
//! 1. **Agreement** — a `StreamAnalyzer` fed a full trace lands within
//!    tolerance of the batch `analyze()` result on the same data (at the
//!    same fixed block size the agreement is exact: the maxima buffer is
//!    the batch `block_maxima` vector).
//! 2. **Sketch soundness** — GK quantile queries stay within the `εn`
//!    rank-error bound, and memory stays sublinear, for arbitrary
//!    streams.

use proptest::prelude::*;
use proxima_mbpta::{BlockSpec, MbptaConfig, Pipeline};
use proxima_stream::{QuantileSketch, StreamAnalyzer, StreamConfig};

/// Deterministic synthetic campaign: base latency plus `k` summed uniform
/// jitter terms (bounded, light-tailed — the MBPTA-compliant shape).
fn campaign(n: usize, seed: u64) -> Vec<f64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
        .collect()
}

proptest! {
    /// Streaming a full trace reproduces the batch pWCET at the same
    /// fixed block size — within 1% as the acceptance criterion demands
    /// (in fact exactly; the assert keeps the tolerance of the spec).
    #[test]
    fn streaming_matches_batch_within_tolerance(
        seed in 0u64..20,
        block_idx in 0usize..3,
    ) {
        let block = [25usize, 50, 100][block_idx];
        let n = 5_000;
        let times = campaign(n, seed);
        let batch = Pipeline::new(MbptaConfig {
            block: BlockSpec::Fixed(block),
            ..MbptaConfig::default()
        })
        .analyze(&times);
        // Fixed seeds occasionally fail the 5%-level iid gate; agreement
        // is only defined where the batch pipeline accepts the campaign.
        prop_assume!(batch.is_ok());
        let batch_budget = batch.unwrap().budget_for(1e-12).unwrap();

        let mut analyzer = StreamAnalyzer::new(StreamConfig {
            block_size: block,
            refit_every_blocks: 4,
            bootstrap: None,
            ..StreamConfig::default()
        }).unwrap();
        analyzer.extend(times.iter().copied()).unwrap();
        let snap = analyzer.finish().unwrap();
        let rel = (snap.pwcet / batch_budget - 1.0).abs();
        prop_assert!(rel < 0.01, "seed={seed} block={block} rel={rel}");
        prop_assert_eq!(snap.n, n);
        prop_assert_eq!(snap.blocks, n / block);
    }

    /// The final snapshot of a stream equals the snapshot the analyzer
    /// would have emitted anyway at the last refit boundary: `finish()`
    /// adds no hidden state.
    #[test]
    fn finish_is_consistent_with_last_checkpoint(seed in 0u64..10) {
        // 2000 samples, block 25, refit every 2 blocks: n is an exact
        // refit boundary, so the last pushed snapshot and finish() see the
        // identical maxima buffer.
        let times = campaign(2_000, seed);
        let mut analyzer = StreamAnalyzer::new(StreamConfig {
            block_size: 25,
            refit_every_blocks: 2,
            bootstrap: None,
            ..StreamConfig::default()
        }).unwrap();
        let snaps = analyzer.extend(times.iter().copied()).unwrap();
        prop_assume!(!snaps.is_empty());
        let last = snaps.last().unwrap();
        let fin = analyzer.finish().unwrap();
        prop_assert_eq!(fin.distribution, last.distribution);
        prop_assert_eq!(fin.blocks, last.blocks);
    }

    /// GK sketch rank soundness: for any stream and any query level, the
    /// true rank of the sketch's answer is within `εn (+1)` of the target.
    #[test]
    fn sketch_quantile_within_rank_bound(
        sample in prop::collection::vec(0.0f64..1e6, 100..2_000),
        phi in 0.0f64..1.0,
    ) {
        let eps = 0.02;
        let mut sketch = QuantileSketch::new(eps).unwrap();
        for &x in &sample {
            sketch.insert(x);
        }
        let est = sketch.quantile(phi).unwrap();
        let mut sorted = sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = sorted.partition_point(|&v| v < est);
        let hi = sorted.partition_point(|&v| v <= est);
        let target = phi * sample.len() as f64;
        let slack = eps * sample.len() as f64 + 1.0;
        // The estimate's true rank interval [lo, hi] must approach the
        // target within the GK guarantee.
        let dist = if target < lo as f64 {
            lo as f64 - target
        } else if target > hi as f64 {
            target - hi as f64
        } else {
            0.0
        };
        prop_assert!(dist <= slack, "phi={phi} dist={dist} slack={slack}");
    }

    /// Sketch extremes are exact and memory is sublinear for any stream.
    #[test]
    fn sketch_extremes_exact_and_memory_bounded(
        sample in prop::collection::vec(-1e9f64..1e9, 1..3_000),
    ) {
        let mut sketch = QuantileSketch::new(0.01).unwrap();
        for &x in &sample {
            sketch.insert(x);
        }
        let min = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(sketch.min().unwrap(), min);
        prop_assert_eq!(sketch.max().unwrap(), max);
        // Far below the raw stream length once past the warmup region.
        if sample.len() >= 1_000 {
            prop_assert!(
                sketch.tuples() <= sample.len() / 2,
                "tuples={} n={}",
                sketch.tuples(),
                sample.len()
            );
        }
    }

    /// The analyzer's exact side-channel stats agree with the raw stream:
    /// high watermark, count, block count.
    #[test]
    fn analyzer_bookkeeping_is_exact(seed in 0u64..10, block in 10usize..60) {
        let times = campaign(1_500, seed);
        let mut analyzer = StreamAnalyzer::new(StreamConfig {
            block_size: block,
            bootstrap: None,
            ..StreamConfig::default()
        }).unwrap();
        analyzer.extend(times.iter().copied()).unwrap();
        let hwm = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(analyzer.high_watermark().unwrap(), hwm);
        prop_assert_eq!(analyzer.len(), times.len());
        prop_assert_eq!(analyzer.blocks(), times.len() / block);
    }
}
