//! Property-based tests of the streaming MBPTA subsystem.
//!
//! The two load-bearing claims:
//!
//! 1. **Agreement** — a `StreamAnalyzer` fed a full trace lands within
//!    tolerance of the batch `analyze()` result on the same data (at the
//!    same fixed block size the agreement is exact: the maxima buffer is
//!    the batch `block_maxima` vector).
//! 2. **Sketch soundness** — GK quantile queries stay within the `εn`
//!    rank-error bound, and memory stays sublinear, for arbitrary
//!    streams.

use proptest::prelude::*;
use proxima_mbpta::{BlockSpec, MbptaConfig, Pipeline};
use proxima_stream::{
    FederatedAnalyzer, FederatedConfig, QuantileSketch, StreamAnalyzer, StreamConfig,
};

/// Deterministic synthetic campaign: base latency plus `k` summed uniform
/// jitter terms (bounded, light-tailed — the MBPTA-compliant shape).
fn campaign(n: usize, seed: u64) -> Vec<f64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
        .collect()
}

proptest! {
    /// Streaming a full trace reproduces the batch pWCET at the same
    /// fixed block size — within 1% as the acceptance criterion demands
    /// (in fact exactly; the assert keeps the tolerance of the spec).
    #[test]
    fn streaming_matches_batch_within_tolerance(
        seed in 0u64..20,
        block_idx in 0usize..3,
    ) {
        let block = [25usize, 50, 100][block_idx];
        let n = 5_000;
        let times = campaign(n, seed);
        let batch = Pipeline::new(MbptaConfig {
            block: BlockSpec::Fixed(block),
            ..MbptaConfig::default()
        })
        .analyze(&times);
        // Fixed seeds occasionally fail the 5%-level iid gate; agreement
        // is only defined where the batch pipeline accepts the campaign.
        prop_assume!(batch.is_ok());
        let batch_budget = batch.unwrap().budget_for(1e-12).unwrap();

        let mut analyzer = StreamAnalyzer::new(StreamConfig {
            block_size: block,
            refit_every_blocks: 4,
            bootstrap: None,
            ..StreamConfig::default()
        }).unwrap();
        analyzer.extend(times.iter().copied()).unwrap();
        let snap = analyzer.finish().unwrap();
        let rel = (snap.pwcet / batch_budget - 1.0).abs();
        prop_assert!(rel < 0.01, "seed={seed} block={block} rel={rel}");
        prop_assert_eq!(snap.n, n);
        prop_assert_eq!(snap.blocks, n / block);
    }

    /// The final snapshot of a stream equals the snapshot the analyzer
    /// would have emitted anyway at the last refit boundary: `finish()`
    /// adds no hidden state.
    #[test]
    fn finish_is_consistent_with_last_checkpoint(seed in 0u64..10) {
        // 2000 samples, block 25, refit every 2 blocks: n is an exact
        // refit boundary, so the last pushed snapshot and finish() see the
        // identical maxima buffer.
        let times = campaign(2_000, seed);
        let mut analyzer = StreamAnalyzer::new(StreamConfig {
            block_size: 25,
            refit_every_blocks: 2,
            bootstrap: None,
            ..StreamConfig::default()
        }).unwrap();
        let snaps = analyzer.extend(times.iter().copied()).unwrap();
        prop_assume!(!snaps.is_empty());
        let last = snaps.last().unwrap();
        let fin = analyzer.finish().unwrap();
        prop_assert_eq!(fin.distribution, last.distribution);
        prop_assert_eq!(fin.blocks, last.blocks);
    }

    /// GK sketch rank soundness: for any stream and any query level, the
    /// true rank of the sketch's answer is within `εn (+1)` of the target.
    #[test]
    fn sketch_quantile_within_rank_bound(
        sample in prop::collection::vec(0.0f64..1e6, 100..2_000),
        phi in 0.0f64..1.0,
    ) {
        let eps = 0.02;
        let mut sketch = QuantileSketch::new(eps).unwrap();
        for &x in &sample {
            sketch.insert(x);
        }
        let est = sketch.quantile(phi).unwrap();
        let mut sorted = sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = sorted.partition_point(|&v| v < est);
        let hi = sorted.partition_point(|&v| v <= est);
        let target = phi * sample.len() as f64;
        let slack = eps * sample.len() as f64 + 1.0;
        // The estimate's true rank interval [lo, hi] must approach the
        // target within the GK guarantee.
        let dist = if target < lo as f64 {
            lo as f64 - target
        } else if target > hi as f64 {
            target - hi as f64
        } else {
            0.0
        };
        prop_assert!(dist <= slack, "phi={phi} dist={dist} slack={slack}");
    }

    /// Sketch extremes are exact and memory is sublinear for any stream.
    #[test]
    fn sketch_extremes_exact_and_memory_bounded(
        sample in prop::collection::vec(-1e9f64..1e9, 1..3_000),
    ) {
        let mut sketch = QuantileSketch::new(0.01).unwrap();
        for &x in &sample {
            sketch.insert(x);
        }
        let min = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(sketch.min().unwrap(), min);
        prop_assert_eq!(sketch.max().unwrap(), max);
        // Far below the raw stream length once past the warmup region.
        if sample.len() >= 1_000 {
            prop_assert!(
                sketch.tuples() <= sample.len() / 2,
                "tuples={} n={}",
                sketch.tuples(),
                sample.len()
            );
        }
    }

    /// Federated soundness: for ANY split of a stream into shard-local
    /// sketches, the merged sketch answers every rank query within the
    /// `ε₁n₁ + … + εₖnₖ = ε·n` additive bound of the federated
    /// guarantee.
    #[test]
    fn merged_sketch_within_rank_bound_over_random_splits(
        sample in prop::collection::vec(0.0f64..1e6, 200..2_000),
        cuts in prop::collection::vec(0usize..2_000, 1..6),
        phi in 0.0f64..1.0,
    ) {
        let eps = 0.02;
        // Random split points → contiguous shards of arbitrary sizes.
        let mut bounds: Vec<usize> = cuts.iter().map(|i| i % sample.len()).collect();
        bounds.push(0);
        bounds.push(sample.len());
        bounds.sort_unstable();
        let mut merged = QuantileSketch::new(eps).unwrap();
        for window in bounds.windows(2) {
            let mut shard = QuantileSketch::new(eps).unwrap();
            for &x in &sample[window[0]..window[1]] {
                shard.insert(x);
            }
            merged.merge(&shard);
        }
        prop_assert_eq!(merged.len(), sample.len() as u64);
        let est = merged.quantile(phi).unwrap();
        let mut sorted = sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = sorted.partition_point(|&v| v < est) as f64;
        let hi = sorted.partition_point(|&v| v <= est) as f64;
        let target = phi * sample.len() as f64;
        let slack = eps * sample.len() as f64 + 1.0;
        let dist = if target < lo {
            lo - target
        } else if target > hi {
            target - hi
        } else {
            0.0
        };
        prop_assert!(dist <= slack, "phi={phi} dist={dist} slack={slack}");
    }

    /// Merge is commutative and associative up to the quantile
    /// tolerance: every merge order answers within `ε·n` of the truth,
    /// so any two orders are within `2εn` of each other. (Tuple layouts
    /// may differ; the *answers* must not.)
    #[test]
    fn sketch_merge_order_insensitive_within_tolerance(
        a in prop::collection::vec(0.0f64..1e6, 100..800),
        b in prop::collection::vec(0.0f64..1e6, 100..800),
        c in prop::collection::vec(0.0f64..1e6, 100..800),
    ) {
        let eps = 0.02;
        let sketch_of = |xs: &[f64]| {
            let mut s = QuantileSketch::new(eps).unwrap();
            for &x in xs {
                s.insert(x);
            }
            s
        };
        // (a ∪ b) ∪ c, c ∪ (b ∪ a), and b ∪ (a ∪ c).
        let mut ab_c = sketch_of(&a);
        ab_c.merge(&sketch_of(&b));
        ab_c.merge(&sketch_of(&c));
        let mut c_ba = sketch_of(&c);
        let mut ba = sketch_of(&b);
        ba.merge(&sketch_of(&a));
        c_ba.merge(&ba);
        let mut b_ac = sketch_of(&b);
        let mut ac = sketch_of(&a);
        ac.merge(&sketch_of(&c));
        b_ac.merge(&ac);

        let n = (a.len() + b.len() + c.len()) as f64;
        let mut union: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        union.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for s in [&ab_c, &c_ba, &b_ac] {
            prop_assert_eq!(s.len() as f64, n);
            prop_assert_eq!(s.min().unwrap(), union[0]);
            prop_assert_eq!(s.max().unwrap(), *union.last().unwrap());
        }
        for phi in [0.1, 0.5, 0.9, 0.99] {
            for s in [&ab_c, &c_ba, &b_ac] {
                let est = s.quantile(phi).unwrap();
                let rank = union.partition_point(|&v| v <= est) as f64;
                // Each order individually honours the federated bound —
                // that is the order-insensitivity that matters.
                prop_assert!(
                    (rank - phi * n).abs() <= eps * n + 1.0,
                    "phi={phi} rank={rank}"
                );
            }
        }
    }

    /// Sharded `finish()` agrees with the single analyzer's pWCET within
    /// the acceptance bound (<1%; exact at block-aligned shards, the
    /// assert keeps the tolerance of the spec) for any shard count.
    #[test]
    fn sharded_finish_matches_single_analyzer(
        seed in 0u64..10,
        shards in 1usize..9,
    ) {
        let times = campaign(4_000, seed);
        let config = StreamConfig {
            block_size: 25,
            refit_every_blocks: 4,
            bootstrap: None,
            ..StreamConfig::default()
        };
        let mut single = StreamAnalyzer::new(config.clone()).unwrap();
        single.extend(times.iter().copied()).unwrap();
        let single_final = single.finish().unwrap();

        let federated = FederatedConfig::new(config, shards).balanced_for(times.len());
        let mut fed = FederatedAnalyzer::new(federated).unwrap();
        for &x in &times {
            fed.push(x).unwrap();
        }
        let sharded = fed.finish().unwrap();
        let rel = (sharded.pwcet / single_final.pwcet - 1.0).abs();
        prop_assert!(rel < 0.01, "shards={shards} rel={rel}");
        // Block-aligned shards make the agreement exact, not just close.
        prop_assert_eq!(sharded.pwcet, single_final.pwcet);
        prop_assert_eq!(sharded.n, single_final.n);
        prop_assert_eq!(sharded.blocks, single_final.blocks);
        prop_assert_eq!(sharded.high_watermark, single_final.high_watermark);
    }

    /// The analyzer's exact side-channel stats agree with the raw stream:
    /// high watermark, count, block count.
    #[test]
    fn analyzer_bookkeeping_is_exact(seed in 0u64..10, block in 10usize..60) {
        let times = campaign(1_500, seed);
        let mut analyzer = StreamAnalyzer::new(StreamConfig {
            block_size: block,
            bootstrap: None,
            ..StreamConfig::default()
        }).unwrap();
        analyzer.extend(times.iter().copied()).unwrap();
        let hwm = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(analyzer.high_watermark().unwrap(), hwm);
        prop_assert_eq!(analyzer.len(), times.len());
        prop_assert_eq!(analyzer.blocks(), times.len() / block);
    }
}
