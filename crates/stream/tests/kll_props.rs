//! Property battery for the KLL sketch: codec adversaries and the
//! GK-vs-KLL space/error contract.
//!
//! Three claims, each fuzzed:
//!
//! 1. **Round-trip identity** — encode→decode is the identity for
//!    arbitrary KLL states (and for the kind-tagged [`Sketch`]
//!    dispatch), and the encoding is canonical.
//! 2. **Adversarial robustness** — truncation at *every* cut point,
//!    single-bit flips, and wrong kind-tag bytes all decode to typed
//!    `MbptaError::Checkpoint` errors. No panics, no silent misparses.
//! 3. **Space/error contract** — after a deep (≥8-way) merge tree over
//!    random shard splits, a KLL sketch tuned to the rank error GK
//!    *actually achieved* stores fewer summary bytes than GK. This is
//!    the reason `--sketch kll` exists; the test pins it down with
//!    deterministic counters (stored items × bytes-per-item), never
//!    wall-clock or allocator measurements.

use proptest::prelude::*;
use proxima_mbpta::persist::{Decode, Encode, Reader, Writer};
use proxima_mbpta::MbptaError;
use proxima_stream::persist::{load_analyzer, save_analyzer};
use proxima_stream::{KllSketch, Sketch, SketchKind, StreamAnalyzer, StreamConfig};

/// Deterministic synthetic campaign (same shape as the other stream
/// tests: base latency + summed uniform jitter).
fn campaign(n: usize, seed: u64) -> Vec<f64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
        .collect()
}

fn kll_stream_config(block: usize, every: usize) -> StreamConfig {
    StreamConfig {
        block_size: block,
        refit_every_blocks: every,
        sketch: SketchKind::Kll,
        ..StreamConfig::default()
    }
}

/// Split `data` into `ways` contiguous shards (cut points drawn from
/// `cuts`), sketch each shard independently, then fold them through a
/// binary merge tree — depth ⌈log₂ ways⌉, the worst case for GK's
/// ε₁+ε₂ merge bound.
fn merge_tree(kind: SketchKind, epsilon: f64, data: &[f64], cuts: &[usize]) -> Sketch {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % data.len()).collect();
    bounds.push(0);
    bounds.push(data.len());
    bounds.sort_unstable();
    bounds.dedup();
    let mut shards: Vec<Sketch> = bounds
        .windows(2)
        .map(|w| {
            let mut s = Sketch::new(kind, epsilon).unwrap();
            s.insert_batch(&data[w[0]..w[1]]);
            s
        })
        .collect();
    while shards.len() > 1 {
        let mut next = Vec::with_capacity(shards.len().div_ceil(2));
        let mut it = shards.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge(&b).unwrap();
            }
            next.push(a);
        }
        shards = next;
    }
    shards.pop().unwrap()
}

/// Worst observed rank error of `sketch` against the exact sorted data,
/// probed on a 101-point φ grid: how far the returned quantile's true
/// rank bracket sits from the target rank.
fn observed_rank_error(sketch: &Sketch, sorted: &[f64]) -> u64 {
    let n = sorted.len() as u64;
    let mut worst = 0u64;
    for k in 0..=100u64 {
        let phi = k as f64 / 100.0;
        let target = ((phi * n as f64).ceil() as u64).clamp(1, n);
        let q = sketch.quantile(phi).unwrap();
        let lo = sorted.partition_point(|&x| x < q) as u64 + 1;
        let hi = sorted.partition_point(|&x| x <= q) as u64;
        let err = if target < lo {
            lo - target
        } else {
            target.saturating_sub(hi)
        };
        worst = worst.max(err);
    }
    worst
}

/// GK stores `Tuple { v, g, delta }` = 24 bytes per kept item; KLL
/// stores a bare `f64` = 8 bytes per kept item.
const GK_BYTES_PER_ITEM: usize = 24;
const KLL_BYTES_PER_ITEM: usize = 8;

proptest! {
    /// KLL encode→decode is the identity (strict `PartialEq`: levels,
    /// coin counter, side stats), and the encoding is canonical.
    #[test]
    fn kll_round_trip_identity(
        sample in prop::collection::vec(0.0f64..1e6, 1..3_000),
        eps_mil in 1usize..200,
    ) {
        let mut sketch = KllSketch::new(eps_mil as f64 / 1000.0).unwrap();
        for &x in &sample {
            sketch.insert(x);
        }
        let mut w = Writer::new();
        sketch.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = KllSketch::decode(&mut r).unwrap();
        prop_assert!(r.remaining() == 0);
        prop_assert_eq!(&decoded, &sketch);
        let mut w2 = Writer::new();
        decoded.encode(&mut w2);
        prop_assert_eq!(w2.into_bytes(), bytes);
    }

    /// The kind-tagged dispatch wrapper round-trips both variants and
    /// restores the correct kind.
    #[test]
    fn sketch_dispatch_round_trip_identity(
        sample in prop::collection::vec(0.0f64..1e6, 1..1_500),
        kll in 0usize..2,
    ) {
        let kind = if kll == 1 { SketchKind::Kll } else { SketchKind::Gk };
        let mut sketch = Sketch::new(kind, 0.01).unwrap();
        sketch.insert_batch(&sample);
        let mut w = Writer::new();
        sketch.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = Sketch::decode(&mut r).unwrap();
        prop_assert!(r.remaining() == 0);
        prop_assert_eq!(decoded.kind(), kind);
        prop_assert_eq!(&decoded, &sketch);
    }

    /// A KLL-configured analyzer checkpoint round-trips exactly and
    /// re-encodes canonically — the format-v3 path end to end.
    #[test]
    fn kll_analyzer_checkpoint_round_trip(
        n in 0usize..2_500,
        seed in 0u64..12,
        block in 10usize..60,
    ) {
        let mut analyzer = StreamAnalyzer::new(kll_stream_config(block, 3)).unwrap();
        analyzer.extend(campaign(n, seed)).unwrap();
        let blob = save_analyzer(&analyzer);
        let restored = load_analyzer(&blob).unwrap();
        prop_assert_eq!(restored.len(), analyzer.len());
        prop_assert_eq!(restored.sketch(), analyzer.sketch());
        prop_assert_eq!(restored.maxima(), analyzer.maxima());
        prop_assert_eq!(restored.last_snapshot(), analyzer.last_snapshot());
        prop_assert_eq!(save_analyzer(&restored), blob);
    }

    /// Flipping any single bit in a sealed KLL checkpoint is caught by
    /// the envelope (magic/version/length or the FNV-1a checksum) as a
    /// typed error.
    #[test]
    fn bit_flipped_kll_checkpoints_are_typed_errors(
        n in 100usize..1_000,
        seed in 0u64..10,
        frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let mut analyzer = StreamAnalyzer::new(kll_stream_config(25, 4)).unwrap();
        analyzer.extend(campaign(n, seed)).unwrap();
        let mut blob = save_analyzer(&analyzer);
        let byte = ((blob.len() as f64) * frac) as usize % blob.len();
        blob[byte] ^= 1 << bit;
        match load_analyzer(&blob) {
            Err(MbptaError::Checkpoint { .. }) => {}
            other => prop_assert!(false, "flip at byte {byte} bit {bit} gave {other:?}"),
        }
    }

    /// The headline space/error contract: after an ≥8-way merge tree
    /// over a random shard split, KLL tuned to the rank error GK
    /// *observed* needs fewer summary bytes than GK. Sizes and errors
    /// are deterministic counters (stored items, exact ranks) — the
    /// 1-core CI box measures nothing time-based here.
    #[test]
    fn kll_beats_gk_summary_size_at_equal_observed_error(
        seed in 0u64..1_000,
        cuts in prop::collection::vec(1usize..20_000, 7..12),
    ) {
        let data = campaign(20_000, seed);
        let mut sorted = data.clone();
        sorted.sort_unstable_by(f64::total_cmp);

        let gk = merge_tree(SketchKind::Gk, 0.02, &data, &cuts);
        let gk_err = observed_rank_error(&gk, &sorted).max(1);
        let gk_bytes = gk.tuples() * GK_BYTES_PER_ITEM;

        // Aim KLL at the error GK actually delivered (not its nominal
        // ε): that is the "equal observed rank error" operating point.
        // Tighten ε if the first attempt lands above GK's error, then
        // loosen toward the equal-error point — a larger ε means a
        // smaller summary, and the comparison is only fair at the
        // loosest ε that still matches GK's observed error.
        let mut eps = (gk_err as f64 / data.len() as f64).clamp(1e-4, 0.4);
        let mut kll = merge_tree(SketchKind::Kll, eps, &data, &cuts);
        let mut kll_err = observed_rank_error(&kll, &sorted);
        let mut rounds = 0;
        while kll_err > gk_err && rounds < 6 {
            eps /= 2.0;
            kll = merge_tree(SketchKind::Kll, eps, &data, &cuts);
            kll_err = observed_rank_error(&kll, &sorted);
            rounds += 1;
        }
        for _ in 0..8 {
            let cand_eps = (eps * 1.5).min(0.4);
            if cand_eps <= eps {
                break;
            }
            let cand = merge_tree(SketchKind::Kll, cand_eps, &data, &cuts);
            let cand_err = observed_rank_error(&cand, &sorted);
            if cand_err > gk_err {
                break;
            }
            eps = cand_eps;
            kll = cand;
            kll_err = cand_err;
        }
        let kll_bytes = kll.tuples() * KLL_BYTES_PER_ITEM;
        prop_assert!(
            kll_err <= gk_err,
            "KLL never reached GK's observed error: {kll_err} > {gk_err} at ε={eps}"
        );
        prop_assert!(
            kll_bytes <= gk_bytes,
            "KLL summary ({} items, {kll_bytes} B at ε={eps}, err {kll_err}) \
             larger than GK ({} items, {gk_bytes} B, err {gk_err})",
            kll.tuples(),
            gk.tuples()
        );
    }
}

#[test]
fn truncation_at_every_cut_is_a_typed_error() {
    let mut sketch = KllSketch::new(0.05).unwrap();
    for x in campaign(500, 3) {
        sketch.insert(x);
    }
    let mut w = Writer::new();
    sketch.encode(&mut w);
    let bytes = w.into_bytes();
    for cut in 0..bytes.len() {
        let mut r = Reader::new(&bytes[..cut]);
        match KllSketch::decode(&mut r) {
            Err(MbptaError::Checkpoint { .. }) => {}
            other => panic!("truncation at {cut}/{} gave {other:?}", bytes.len()),
        }
    }
}

#[test]
fn unknown_sketch_kind_tags_are_typed_errors() {
    let mut sketch = Sketch::new(SketchKind::Kll, 0.02).unwrap();
    sketch.insert_batch(&campaign(300, 5));
    let mut w = Writer::new();
    sketch.encode(&mut w);
    let bytes = w.into_bytes();
    // The kind tag is the first byte of the dispatch encoding.
    for tag in [2u8, 3, 0x10, 0x7F, 0xFF] {
        let mut evil = bytes.clone();
        evil[0] = tag;
        let mut r = Reader::new(&evil);
        let err = Sketch::decode(&mut r).unwrap_err();
        assert!(matches!(err, MbptaError::Checkpoint { .. }), "{err:?}");
        assert!(err.to_string().contains("sketch kind"), "{err}");
    }
}

#[test]
fn swapped_valid_tag_never_misparses_silently() {
    // Re-tagging a KLL payload as GK (and vice versa) must fail decode
    // — each decoder's structural invariants (GK: tuple coverage sums
    // to n; KLL: stored weight equals n, canonical shape) reject the
    // other's body rather than accepting nonsense.
    for (kind, other_tag) in [(SketchKind::Kll, 0u8), (SketchKind::Gk, 1u8)] {
        let mut sketch = Sketch::new(kind, 0.02).unwrap();
        sketch.insert_batch(&campaign(300, 5));
        let mut w = Writer::new();
        sketch.encode(&mut w);
        let mut evil = w.into_bytes();
        evil[0] = other_tag;
        let mut r = Reader::new(&evil);
        match Sketch::decode(&mut r) {
            Err(MbptaError::Checkpoint { .. }) => {}
            other => panic!("{kind} payload wearing tag {other_tag} gave {other:?}"),
        }
    }
}
