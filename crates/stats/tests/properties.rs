//! Property-based tests over the statistics substrate.

use proptest::prelude::*;
use proxima_stats::descriptive;
use proxima_stats::dist::{
    ChiSquared, ContinuousDistribution, Exponential, Gev, Gpd, Gumbel, Normal,
};
use proxima_stats::special::{gamma_p, gamma_q, ln_gamma, std_normal_cdf, std_normal_quantile};

proptest! {
    /// `P(a, x) + Q(a, x) = 1` everywhere in the domain.
    #[test]
    fn incomplete_gamma_complementarity(a in 0.01f64..100.0, x in 0.0f64..500.0) {
        let s = gamma_p(a, x) + gamma_q(a, x);
        prop_assert!((s - 1.0).abs() < 1e-10, "a={a} x={x} s={s}");
    }

    /// `ln Γ` satisfies the recurrence `ln Γ(x+1) = ln x + ln Γ(x)`.
    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..150.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "x={x}");
    }

    /// Probit inverts the normal CDF across the full probability range.
    #[test]
    fn probit_round_trip(p in 1e-12f64..1.0) {
        prop_assume!(p < 1.0 - 1e-12);
        let z = std_normal_quantile(p);
        let back = std_normal_cdf(z);
        prop_assert!((back - p).abs() < 1e-9 + 1e-6 * p, "p={p} back={back}");
    }

    /// CDF monotonicity for the whole distribution zoo.
    #[test]
    fn cdf_monotone_everywhere(
        a in -100.0f64..100.0,
        b in -100.0f64..100.0,
        mu in -50.0f64..50.0,
        sigma in 0.1f64..50.0,
        xi in -0.45f64..0.45,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let dists: Vec<Box<dyn ContinuousDistribution>> = vec![
            Box::new(Normal::new(mu, sigma).unwrap()),
            Box::new(Gumbel::new(mu, sigma).unwrap()),
            Box::new(Gev::new(mu, sigma, xi).unwrap()),
            Box::new(Gpd::new(mu, sigma, xi).unwrap()),
            Box::new(Exponential::new(sigma).unwrap()),
            Box::new(ChiSquared::new(sigma).unwrap()),
        ];
        for d in &dists {
            prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
            prop_assert!(d.pdf(lo) >= 0.0 && d.pdf(hi) >= 0.0);
            prop_assert!((d.cdf(lo) + d.survival(lo) - 1.0).abs() < 1e-9);
        }
    }

    /// Quantile/CDF round trip for the EVT family at arbitrary parameters.
    #[test]
    fn evt_quantile_round_trip(
        mu in -1e4f64..1e4,
        sigma in 0.01f64..1e3,
        xi in -0.4f64..0.4,
        p in 0.001f64..0.999,
    ) {
        let gev = Gev::new(mu, sigma, xi).unwrap();
        let x = gev.quantile(p).unwrap();
        prop_assert!((gev.cdf(x) - p).abs() < 1e-7, "gev p={p} x={x}");
        let gpd = Gpd::new(mu, sigma, xi).unwrap();
        let y = gpd.quantile(p).unwrap();
        prop_assert!((gpd.cdf(y) - p).abs() < 1e-7, "gpd p={p} y={y}");
    }

    /// Type-7 quantiles are monotone in p and bracketed by min/max.
    #[test]
    fn sample_quantiles_monotone(
        sample in prop::collection::vec(-1e6f64..1e6, 1..200),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let qlo = descriptive::quantile(&sample, lo).unwrap();
        let qhi = descriptive::quantile(&sample, hi).unwrap();
        prop_assert!(qlo <= qhi + 1e-9);
        let min = descriptive::min(&sample).unwrap();
        let max = descriptive::max(&sample).unwrap();
        prop_assert!(qlo >= min - 1e-9 && qhi <= max + 1e-9);
    }

    /// Mean/variance are translation-equivariant / invariant.
    #[test]
    fn moments_translation(
        sample in prop::collection::vec(-1e5f64..1e5, 2..100),
        shift in -1e5f64..1e5,
    ) {
        let shifted: Vec<f64> = sample.iter().map(|x| x + shift).collect();
        let m0 = descriptive::mean(&sample).unwrap();
        let m1 = descriptive::mean(&shifted).unwrap();
        prop_assert!((m1 - (m0 + shift)).abs() < 1e-6 * (1.0 + m0.abs() + shift.abs()));
        let v0 = descriptive::variance(&sample).unwrap();
        let v1 = descriptive::variance(&shifted).unwrap();
        prop_assert!((v0 - v1).abs() < 1e-6 * (1.0 + v0.abs()));
    }

    /// The uniform ECDF evaluated at its own observations gives i/n.
    #[test]
    fn ecdf_at_sorted_points(sample in prop::collection::vec(0.0f64..1e6, 1..100)) {
        let ecdf = proxima_stats::ecdf::Ecdf::new(&sample).unwrap();
        let sorted = ecdf.as_sorted().to_vec();
        let n = sorted.len() as f64;
        for (i, &x) in sorted.iter().enumerate() {
            let f = ecdf.eval(x);
            // At a (possibly tied) observation, F̂ ≥ (i+1)/n.
            prop_assert!(f >= (i as f64 + 1.0) / n - 1e-12);
        }
    }

    /// Gumbel exceedance quantile is consistent with survival for tiny p.
    #[test]
    fn gumbel_far_tail_consistency(
        mu in -1e6f64..1e6,
        beta in 0.01f64..1e4,
        exp in 3i32..16,
    ) {
        let g = Gumbel::new(mu, beta).unwrap();
        let p = 10f64.powi(-exp);
        let x = g.exceedance_quantile(p).unwrap();
        let s = g.survival(x);
        prop_assert!((s / p - 1.0).abs() < 1e-6, "p={p} s={s}");
    }
}
