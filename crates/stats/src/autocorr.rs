//! Sample autocorrelation, the ingredient of the Ljung-Box test.

use crate::error::check_len;
use crate::float::exactly_zero;
use crate::StatsError;

/// Sample autocorrelation `ρ̂_k` at lags `1..=max_lag`.
///
/// Uses the standard biased estimator (divisor `n`, not `n−k`), the one the
/// Ljung-Box statistic is defined over:
///
/// `ρ̂_k = Σ_{t=1}^{n−k} (x_t − x̄)(x_{t+k} − x̄) / Σ_t (x_t − x̄)²`.
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] if `sample.len() <= max_lag + 1`;
/// * [`StatsError::DegenerateSample`] if the sample has zero variance;
/// * [`StatsError::InvalidArgument`] if `max_lag == 0`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), proxima_stats::StatsError> {
/// use proxima_stats::autocorr::autocorrelation;
///
/// // A strongly alternating series has ρ̂₁ close to −1.
/// let xs: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let rho = autocorrelation(&xs, 1)?;
/// assert!(rho[0] < -0.9);
/// # Ok(())
/// # }
/// ```
pub fn autocorrelation(sample: &[f64], max_lag: usize) -> Result<Vec<f64>, StatsError> {
    if max_lag == 0 {
        return Err(StatsError::InvalidArgument {
            what: "max_lag must be at least 1",
        });
    }
    check_len(sample, max_lag + 2)?;
    let n = sample.len();
    let mean = sample.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = sample.iter().map(|x| x - mean).collect();
    let denom: f64 = centered.iter().map(|c| c * c).sum();
    if exactly_zero(denom) {
        return Err(StatsError::DegenerateSample);
    }
    let mut rho = Vec::with_capacity(max_lag);
    for k in 1..=max_lag {
        let num: f64 = (0..n - k).map(|t| centered[t] * centered[t + k]).sum();
        rho.push(num / denom);
    }
    Ok(rho)
}

/// The default Ljung-Box lag count used across the workspace:
/// `min(20, n/5)` but at least 1 — a common rule of thumb for samples the
/// size of an MBPTA campaign (the paper uses R = 3,000 runs, giving lag 20).
pub fn default_lag(n: usize) -> usize {
    (n / 5).clamp(1, 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iid_sample_has_small_autocorrelation() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        let rho = autocorrelation(&xs, 10).unwrap();
        // 95% band for iid data is about ±2/√n ≈ ±0.045.
        for (k, r) in rho.iter().enumerate() {
            assert!(r.abs() < 0.08, "lag {} rho {}", k + 1, r);
        }
    }

    #[test]
    fn linear_trend_has_high_lag1() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let rho = autocorrelation(&xs, 1).unwrap();
        assert!(rho[0] > 0.98);
    }

    #[test]
    fn constant_sample_is_degenerate() {
        let xs = vec![3.0; 100];
        assert_eq!(
            autocorrelation(&xs, 2).unwrap_err(),
            StatsError::DegenerateSample
        );
    }

    #[test]
    fn lag_zero_rejected() {
        assert!(autocorrelation(&[1.0, 2.0, 3.0], 0).is_err());
    }

    #[test]
    fn too_short_sample_rejected() {
        assert!(autocorrelation(&[1.0, 2.0], 5).is_err());
    }

    #[test]
    fn default_lag_rules() {
        assert_eq!(default_lag(3000), 20);
        assert_eq!(default_lag(50), 10);
        assert_eq!(default_lag(4), 1);
    }

    #[test]
    fn rho_bounded_by_one() {
        let xs: Vec<f64> = (0..300).map(|i| ((i * i) % 71) as f64).collect();
        let rho = autocorrelation(&xs, 20).unwrap();
        for r in rho {
            assert!(r.abs() <= 1.0 + 1e-12);
        }
    }
}
