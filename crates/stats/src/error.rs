//! Error type for the statistics crate.

use std::fmt;

/// Errors produced by statistical routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// The sample is too small for the requested computation.
    InsufficientData {
        /// Minimum number of observations required.
        needed: usize,
        /// Number of observations provided.
        got: usize,
    },
    /// An argument was outside its valid domain.
    InvalidArgument {
        /// Which argument was invalid.
        what: &'static str,
    },
    /// The sample contained a non-finite value (NaN or infinity).
    NonFiniteData,
    /// The sample was degenerate (e.g. all values identical) where variation
    /// is required.
    DegenerateSample,
    /// An iterative fit failed to converge.
    NoConvergence {
        /// Which fit failed.
        what: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InsufficientData { needed, got } => {
                write!(
                    f,
                    "insufficient data: need at least {needed} observations, got {got}"
                )
            }
            StatsError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
            StatsError::NonFiniteData => write!(f, "sample contains non-finite values"),
            StatsError::DegenerateSample => write!(f, "sample is degenerate (no variation)"),
            StatsError::NoConvergence { what } => write!(f, "iteration did not converge: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Validate that a sample is non-empty and all-finite.
pub(crate) fn check_finite(sample: &[f64]) -> Result<(), StatsError> {
    if sample.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData);
    }
    Ok(())
}

/// Validate a minimum sample size.
pub(crate) fn check_len(sample: &[f64], needed: usize) -> Result<(), StatsError> {
    if sample.len() < needed {
        return Err(StatsError::InsufficientData {
            needed,
            got: sample.len(),
        });
    }
    check_finite(sample)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StatsError::InsufficientData { needed: 30, got: 3 };
        assert!(e.to_string().contains("30"));
        assert!(e.to_string().contains('3'));
        assert!(StatsError::NonFiniteData.to_string().contains("non-finite"));
    }

    #[test]
    fn check_finite_rejects_nan() {
        assert_eq!(
            check_finite(&[1.0, f64::NAN]),
            Err(StatsError::NonFiniteData)
        );
        assert!(check_finite(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn check_len_enforces_minimum() {
        assert!(check_len(&[1.0], 2).is_err());
        assert!(check_len(&[1.0, 2.0], 2).is_ok());
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<StatsError>();
    }
}
