//! The approved home for exact floating-point comparison.
//!
//! Raw `==`/`!=` on floats is banned workspace-wide by `mbpta-lint`'s
//! `no-float-eq` rule: scattered exact comparisons are impossible to
//! audit, and most of them are bugs (rounding, NaN). The legitimate
//! uses — branch selection on an exact sentinel (`xi == 0` choosing
//! the Gumbel limit of the GEV), degenerate-denominator guards, and
//! bit-identity assertions — go through these helpers instead, so
//! every exact comparison in the tree is explicit, searchable, and
//! carries this module's semantics:
//!
//! * [`exactly_zero`] / [`exact_eq`] use IEEE 754 `==`: `-0.0` equals
//!   `+0.0`, `NaN` equals nothing (a NaN argument therefore answers
//!   `false` — callers guarding a division by an accumulated sum get
//!   the conservative branch).
//! * [`same_bits`] compares representations: distinguishes `-0.0` from
//!   `+0.0` and every NaN payload from every other — the relation the
//!   repo's bit-identity guarantees are stated in.

/// `true` iff `x` is exactly `±0.0` (IEEE `==`; `NaN` answers false).
///
/// # Examples
///
/// ```
/// use proxima_stats::float::exactly_zero;
///
/// assert!(exactly_zero(0.0));
/// assert!(exactly_zero(-0.0));
/// assert!(!exactly_zero(1e-300));
/// assert!(!exactly_zero(f64::NAN));
/// ```
#[inline]
#[must_use]
pub fn exactly_zero(x: f64) -> bool {
    exact_eq(x, 0.0)
}

/// Exact IEEE equality (`-0.0 == +0.0`, `NaN != NaN`), fenced into the
/// one function the linter approves.
///
/// # Examples
///
/// ```
/// use proxima_stats::float::exact_eq;
///
/// assert!(exact_eq(0.5, 0.5));
/// assert!(!exact_eq(0.1 + 0.2, 0.3)); // rounding — the reason the lint exists
/// ```
#[inline]
#[must_use]
pub fn exact_eq(a: f64, b: f64) -> bool {
    // The approved raw float `==`. `no-float-eq` is lexical — it fires on
    // comparisons against float literals and NaN/infinity constants, so
    // this identifier-vs-identifier comparison sits below its radar; the
    // fence here is convention plus this module's docs, not the linter.
    a == b
}

/// Representation equality: `true` iff `a` and `b` are the same bit
/// pattern. This is the relation behind every "bit-identical across
/// --jobs/--shards/resume" guarantee.
///
/// # Examples
///
/// ```
/// use proxima_stats::float::same_bits;
///
/// assert!(same_bits(f64::NAN, f64::NAN));
/// assert!(!same_bits(0.0, -0.0));
/// ```
#[inline]
#[must_use]
pub fn same_bits(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_family() {
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(f64::MIN_POSITIVE));
        assert!(!exactly_zero(f64::NAN));
        assert!(!exactly_zero(f64::INFINITY));
    }

    #[test]
    fn exact_eq_is_ieee() {
        assert!(exact_eq(-0.0, 0.0));
        assert!(!exact_eq(f64::NAN, f64::NAN));
        assert!(exact_eq(f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn same_bits_is_representation() {
        assert!(!same_bits(-0.0, 0.0));
        assert!(same_bits(f64::NAN, f64::NAN));
        assert!(!same_bits(1.0, 1.0 + f64::EPSILON));
    }
}
