//! Wald–Wolfowitz runs test for randomness.

use super::TestResult;
use crate::descriptive::median;
use crate::error::check_len;
use crate::float::exactly_zero;
use crate::special::std_normal_sf;
use crate::StatsError;

/// Wald–Wolfowitz runs test of randomness about the median.
///
/// The sequence is dichotomized at its median; under independence the
/// number of runs (maximal same-side stretches) is asymptotically normal
/// with mean `2 n₊ n₋/n + 1`. Used in the MBPTA literature (Cucu-Grosjean
/// et al., ECRTS 2012) as a second, non-parametric independence check next
/// to Ljung-Box: the runs test catches level shifts and clustering that a
/// few autocorrelation lags can miss.
///
/// Values equal to the median are discarded (the standard treatment).
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] if fewer than 20 usable observations;
/// * [`StatsError::DegenerateSample`] if one side of the median is empty.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), proxima_stats::StatsError> {
/// use proxima_stats::tests::runs_test;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let xs: Vec<f64> = (0..400).map(|_| rng.gen::<f64>()).collect();
/// assert!(runs_test(&xs)?.passes(0.05));
/// # Ok(())
/// # }
/// ```
pub fn runs_test(sample: &[f64]) -> Result<TestResult, StatsError> {
    check_len(sample, 20)?;
    let med = median(sample)?;
    let signs: Vec<bool> = sample
        .iter()
        .filter(|&&x| x != med)
        .map(|&x| x > med)
        .collect();
    if signs.len() < 20 {
        return Err(StatsError::InsufficientData {
            needed: 20,
            got: signs.len(),
        });
    }
    let n_pos = signs.iter().filter(|&&s| s).count() as f64;
    let n_neg = signs.len() as f64 - n_pos;
    if exactly_zero(n_pos) || exactly_zero(n_neg) {
        return Err(StatsError::DegenerateSample);
    }
    let runs = 1 + signs.windows(2).filter(|w| w[0] != w[1]).count();
    let n = n_pos + n_neg;
    let mean = 2.0 * n_pos * n_neg / n + 1.0;
    let var = 2.0 * n_pos * n_neg * (2.0 * n_pos * n_neg - n) / (n * n * (n - 1.0));
    let z = (runs as f64 - mean) / var.sqrt();
    // Two-sided p-value.
    let p = 2.0 * std_normal_sf(z.abs());
    Ok(TestResult {
        statistic: z,
        p_value: p.min(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    #[test]
    fn random_sequence_passes() {
        for seed in [1, 2, 3] {
            let r = runs_test(&noise(500, seed)).unwrap();
            assert!(r.passes(0.01), "seed {seed}: p={}", r.p_value);
        }
    }

    #[test]
    fn level_shift_fails() {
        // First half low, second half high: 2 runs, way too few.
        let mut xs = vec![0.0; 100];
        xs.extend(vec![1.0; 100]);
        // Add tiny jitter so the median split is clean.
        for (i, x) in xs.iter_mut().enumerate() {
            *x += (i % 7) as f64 * 1e-6;
        }
        let r = runs_test(&xs).unwrap();
        assert!(!r.passes(0.05));
        assert!(
            r.statistic < -5.0,
            "strongly too few runs: z={}",
            r.statistic
        );
    }

    #[test]
    fn alternating_sequence_fails() {
        // Perfect alternation: too many runs (negative dependence).
        let xs: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let r = runs_test(&xs).unwrap();
        assert!(!r.passes(0.05));
        assert!(r.statistic > 5.0, "z={}", r.statistic);
    }

    #[test]
    fn short_sample_rejected() {
        assert!(runs_test(&noise(10, 1)).is_err());
    }

    #[test]
    fn constant_sample_rejected() {
        let xs = vec![5.0; 100];
        assert!(runs_test(&xs).is_err());
    }

    #[test]
    fn median_ties_discarded() {
        // Half the values sit exactly on the median: still testable.
        let mut xs = Vec::new();
        let noise = noise(200, 9);
        for (i, &u) in noise.iter().enumerate() {
            if i % 2 == 0 {
                xs.push(0.5);
            } else {
                xs.push(u);
            }
        }
        // Should not panic; outcome depends on the kept subsequence.
        let r = runs_test(&xs);
        assert!(r.is_ok());
    }
}
