//! Ljung-Box test for serial independence.

use super::TestResult;
use crate::autocorr::autocorrelation;
use crate::dist::{ChiSquared, ContinuousDistribution};
use crate::StatsError;

/// Ljung-Box portmanteau test of serial independence at lags `1..=max_lag`.
///
/// `Q = n (n + 2) Σ_{k=1}^{h} ρ̂_k² / (n − k)`; under the null of
/// independence `Q ~ χ²(h)`, and the p-value is the χ² survival probability
/// at `Q`.
///
/// This is the independence half of the MBPTA i.i.d. gate: the paper runs it
/// at a 5% significance level over the 3,000 measured execution times and
/// reports a p-value of 0.83.
///
/// # Errors
///
/// * [`StatsError::InvalidArgument`] if `max_lag == 0`;
/// * [`StatsError::InsufficientData`] if the sample is shorter than
///   `max_lag + 2`;
/// * [`StatsError::DegenerateSample`] if the sample has no variance.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), proxima_stats::StatsError> {
/// use proxima_stats::tests::ljung_box;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let xs: Vec<f64> = (0..500).map(|_| rng.gen::<f64>()).collect();
/// let r = ljung_box(&xs, 20)?;
/// assert!(r.passes(0.05));
/// # Ok(())
/// # }
/// ```
pub fn ljung_box(sample: &[f64], max_lag: usize) -> Result<TestResult, StatsError> {
    let rho = autocorrelation(sample, max_lag)?;
    let n = sample.len() as f64;
    let q: f64 = n
        * (n + 2.0)
        * rho
            .iter()
            .enumerate()
            .map(|(i, r)| r * r / (n - (i + 1) as f64))
            .sum::<f64>();
    let chi2 = ChiSquared::new(max_lag as f64)?;
    Ok(TestResult {
        statistic: q,
        p_value: chi2.survival(q),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seeded iid uniform noise.
    fn white_noise_seeded(n: usize, seed: u64) -> Vec<f64> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    fn white_noise(n: usize) -> Vec<f64> {
        white_noise_seeded(n, 0xBEEF)
    }

    #[test]
    fn white_noise_passes() {
        let r = ljung_box(&white_noise(2000), 20).unwrap();
        assert!(r.passes(0.05), "p={}", r.p_value);
    }

    #[test]
    fn ar1_process_fails() {
        // Strongly autocorrelated series: x_{t+1} = 0.9 x_t + noise.
        let noise = white_noise(2000);
        let mut xs = vec![0.0f64];
        for i in 1..2000 {
            let prev = xs[i - 1];
            xs.push(0.9 * prev + 0.1 * noise[i]);
        }
        let r = ljung_box(&xs, 20).unwrap();
        assert!(!r.passes(0.05), "p={}", r.p_value);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn periodic_series_fails() {
        let xs: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let r = ljung_box(&xs, 20).unwrap();
        assert!(!r.passes(0.05));
    }

    #[test]
    fn statistic_nonnegative() {
        let r = ljung_box(&white_noise(500), 10).unwrap();
        assert!(r.statistic >= 0.0);
        assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn errors_propagate() {
        assert!(ljung_box(&[1.0, 2.0], 20).is_err());
        assert!(ljung_box(&vec![5.0; 100], 10).is_err()); // constant
        assert!(ljung_box(&white_noise(100), 0).is_err());
    }

    #[test]
    fn p_value_approximately_uniform_on_null() {
        // Over many independent white-noise windows, p-values should spread
        // out over (0,1) rather than cluster: check that we see both small
        // and large ones but few below 0.01.
        let mut below_05 = 0;
        let runs = 40;
        for s in 0..runs {
            let xs = white_noise_seeded(400, 1000 + s);
            let r = ljung_box(&xs, 10).unwrap();
            if r.p_value < 0.05 {
                below_05 += 1;
            }
        }
        // Expect ~5%: tolerate up to 20% on 40 windows.
        assert!(below_05 <= 8, "{below_05}/{runs} windows rejected");
    }
}
