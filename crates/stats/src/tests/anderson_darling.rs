//! Anderson-Darling goodness-of-fit test.

use super::TestResult;
use crate::dist::ContinuousDistribution;
use crate::error::check_len;
use crate::StatsError;

/// Anderson-Darling goodness-of-fit test against a fully specified
/// continuous distribution.
///
/// `A² = −n − n⁻¹ Σ_{i=1}^{n} (2i−1)[ln F(x_(i)) + ln(1 − F(x_(n+1−i)))]`.
///
/// AD weights the tails more heavily than KS, which is exactly where a pWCET
/// model must be right, so the EVT fitting pipeline uses it to rank
/// candidate block sizes. The p-value uses the case-0 (fully specified
/// parameters) approximation of Marsaglia & Marsaglia (2004), which is
/// *conservative* when parameters were estimated from the same sample.
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] if fewer than 8 observations;
/// * [`StatsError::DegenerateSample`] if any `F(x)` lands exactly on 0 or 1
///   (the statistic diverges — the model's support does not cover the data).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), proxima_stats::StatsError> {
/// use proxima_stats::dist::Uniform;
/// use proxima_stats::tests::anderson_darling;
///
/// let xs: Vec<f64> = (1..200).map(|i| i as f64 / 200.0).collect();
/// let r = anderson_darling(&xs, &Uniform::new(0.0, 1.0)?)?;
/// assert!(r.passes(0.05));
/// # Ok(())
/// # }
/// ```
pub fn anderson_darling<D: ContinuousDistribution + ?Sized>(
    sample: &[f64],
    dist: &D,
) -> Result<TestResult, StatsError> {
    check_len(sample, 8)?;
    let mut xs = sample.to_vec();
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    let nf = n as f64;
    let mut acc = 0.0;
    for i in 0..n {
        let f_lo = dist.cdf(xs[i]);
        let f_hi = dist.cdf(xs[n - 1 - i]);
        if f_lo <= 0.0 || f_hi >= 1.0 {
            return Err(StatsError::DegenerateSample);
        }
        acc += (2.0 * (i as f64) + 1.0) * (f_lo.ln() + (-f_hi).ln_1p());
    }
    let a2 = -nf - acc / nf;
    Ok(TestResult {
        statistic: a2,
        p_value: ad_p_value(a2),
    })
}

/// Marsaglia & Marsaglia (2004) approximation to `P(A² > a)` for the
/// fully-specified (case-0) Anderson-Darling null distribution.
fn ad_p_value(a2: f64) -> f64 {
    if a2 <= 0.0 {
        return 1.0;
    }
    let cdf = if a2 < 2.0 {
        // Small-statistic branch.
        let z = a2;
        (z.powf(-0.5)
            * (-1.2337141 / z).exp()
            * (2.00012
                + (0.247105
                    - (0.0649821 - (0.0347962 - (0.0116720 - 0.00168691 * z) * z) * z) * z)
                    * z))
            .min(1.0)
    } else {
        let z = a2;
        (-(1.0732
            - (2.30695 - (0.43424 - (0.082433 - (0.008056 - 0.0003146 * z) * z) * z) * z) * z)
            .exp())
        .exp()
    };
    (1.0 - cdf).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Gumbel, Normal, Uniform};

    #[test]
    fn critical_values_anchor() {
        // Case-0 AD 5% critical value is 2.492: p(2.492) ≈ 0.05.
        let p = ad_p_value(2.492);
        assert!((p - 0.05).abs() < 0.01, "p={p}");
        // 1% critical value 3.857.
        let p1 = ad_p_value(3.857);
        assert!((p1 - 0.01).abs() < 0.005, "p={p1}");
    }

    #[test]
    fn uniform_grid_passes() {
        let xs: Vec<f64> = (1..500).map(|i| i as f64 / 500.0).collect();
        let r = anderson_darling(&xs, &Uniform::new(0.0, 1.0).unwrap()).unwrap();
        assert!(r.passes(0.05), "A2={} p={}", r.statistic, r.p_value);
    }

    #[test]
    fn wrong_model_rejected() {
        // Uniform data against a too-concentrated normal: strongly rejected
        // (σ = 0.1 keeps every F(x) strictly inside (0,1)).
        let xs: Vec<f64> = (1..300).map(|i| i as f64 / 300.0).collect();
        let r = anderson_darling(&xs, &Normal::new(0.5, 0.1).unwrap()).unwrap();
        assert!(!r.passes(0.05), "p={}", r.p_value);
    }

    #[test]
    fn gumbel_quantile_grid_passes() {
        let g = Gumbel::new(50.0, 4.0).unwrap();
        let xs: Vec<f64> = (1..400)
            .map(|i| g.quantile(i as f64 / 400.0).unwrap())
            .collect();
        let r = anderson_darling(&xs, &g).unwrap();
        assert!(r.passes(0.05), "p={}", r.p_value);
    }

    #[test]
    fn support_mismatch_is_degenerate() {
        // Data below the support of a uniform(1, 2): F(x) = 0 exactly.
        let xs = vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
        let u = Uniform::new(1.0, 2.0).unwrap();
        assert_eq!(
            anderson_darling(&xs, &u).unwrap_err(),
            StatsError::DegenerateSample
        );
    }

    #[test]
    fn p_value_monotone_in_statistic() {
        let mut prev = 1.0;
        for i in 1..40 {
            let a2 = i as f64 * 0.25;
            let p = ad_p_value(a2);
            assert!(p <= prev + 1e-9, "a2={a2} p={p} prev={prev}");
            prev = p;
        }
    }
}
