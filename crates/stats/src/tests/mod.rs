//! Hypothesis tests used by the MBPTA i.i.d. gate and goodness-of-fit
//! checks.
//!
//! The paper's protocol (Section III, "Fulfilling the i.i.d properties"):
//! *independence* is tested with the Ljung-Box test and *identical
//! distribution* with the two-sample Kolmogorov-Smirnov test, both at a 5%
//! significance level; i.i.d. is rejected only if either p-value falls below
//! 0.05. The paper reports p-values of 0.83 (Ljung-Box) and 0.45 (KS) for
//! the TVCA campaign on the randomized platform.

mod anderson_darling;
mod ks;
mod ljung_box;
mod runs;

pub use anderson_darling::anderson_darling;
pub use ks::{ks_one_sample, ks_two_sample};
pub use ljung_box::ljung_box;
pub use runs::runs_test;

/// Result of a hypothesis test: the statistic and its p-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The value of the test statistic.
    pub statistic: f64,
    /// The p-value: probability, under the null hypothesis, of a statistic
    /// at least as extreme as observed.
    pub p_value: f64,
}

impl TestResult {
    /// `true` if the null hypothesis is **not** rejected at significance
    /// level `alpha` (i.e. `p_value >= alpha`).
    ///
    /// MBPTA convention: "the test is passed" means the sample is consistent
    /// with the null (independence / identical distribution), enabling the
    /// analysis.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_stats::tests::TestResult;
    ///
    /// let r = TestResult { statistic: 12.3, p_value: 0.83 };
    /// assert!(r.passes(0.05));
    /// ```
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

impl std::fmt::Display for TestResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "statistic={:.4}, p={:.4}", self.statistic, self.p_value)
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn passes_threshold_semantics() {
        let r = TestResult {
            statistic: 1.0,
            p_value: 0.05,
        };
        assert!(r.passes(0.05), "boundary counts as pass (>= alpha)");
        let r2 = TestResult {
            statistic: 1.0,
            p_value: 0.049,
        };
        assert!(!r2.passes(0.05));
    }

    #[test]
    fn display_format() {
        let r = TestResult {
            statistic: 2.5,
            p_value: 0.45,
        };
        let s = r.to_string();
        assert!(s.contains("2.5") && s.contains("0.45"));
    }
}
