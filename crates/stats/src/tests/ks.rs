//! Kolmogorov-Smirnov tests (one- and two-sample).

use super::TestResult;
use crate::dist::{ContinuousDistribution, Kolmogorov};
use crate::error::check_len;
use crate::StatsError;

/// Two-sample Kolmogorov-Smirnov test of identical distribution.
///
/// `D = sup_x |F̂₁(x) − F̂₂(x)|` with asymptotic p-value from the Kolmogorov
/// distribution using the effective size `nₑ = n₁n₂/(n₁+n₂)` and the
/// Stephens small-sample correction
/// `λ = (√nₑ + 0.12 + 0.11/√nₑ) · D` (Numerical Recipes `kstwo`).
///
/// This is the identical-distribution half of the MBPTA i.i.d. gate: the
/// protocol splits the measured execution times into two halves and checks
/// they are drawn from the same distribution; the paper reports p = 0.45.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if either sample has fewer than
/// 8 observations (the asymptotic p-value is unreliable below that).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), proxima_stats::StatsError> {
/// use proxima_stats::tests::ks_two_sample;
///
/// let a: Vec<f64> = (0..200).map(|i| (i as f64 * 0.754877) % 1.0).collect();
/// let b: Vec<f64> = (0..200).map(|i| (i as f64 * 0.569840) % 1.0).collect();
/// let r = ks_two_sample(&a, &b)?;
/// assert!(r.passes(0.05)); // same (uniform) distribution
/// # Ok(())
/// # }
/// ```
pub fn ks_two_sample(first: &[f64], second: &[f64]) -> Result<TestResult, StatsError> {
    check_len(first, 8)?;
    check_len(second, 8)?;
    let mut a = first.to_vec();
    let mut b = second.to_vec();
    a.sort_by(|x, y| x.total_cmp(y));
    b.sort_by(|x, y| x.total_cmp(y));

    let (n1, n2) = (a.len(), b.len());
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let x1 = a[i];
        let x2 = b[j];
        if x1 <= x2 {
            i += 1;
        }
        if x2 <= x1 {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }

    let ne = (n1 as f64 * n2 as f64) / (n1 + n2) as f64;
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    Ok(TestResult {
        statistic: d,
        p_value: Kolmogorov::new().survival(lambda),
    })
}

/// One-sample Kolmogorov-Smirnov goodness-of-fit test against a fully
/// specified continuous distribution.
///
/// Used as a goodness-of-fit check of the fitted EVT tail on the block
/// maxima (with the caveat, noted in the MBPTA literature, that fitting the
/// parameters on the same data makes the test conservative).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if the sample has fewer than 8
/// observations.
pub fn ks_one_sample<D: ContinuousDistribution + ?Sized>(
    sample: &[f64],
    dist: &D,
) -> Result<TestResult, StatsError> {
    check_len(sample, 8)?;
    let mut xs = sample.to_vec();
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (idx, &x) in xs.iter().enumerate() {
        let f = dist.cdf(x);
        let hi = (idx as f64 + 1.0) / n - f;
        let lo = f - idx as f64 / n;
        d = d.max(hi.max(lo));
    }
    let sqrt_n = n.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    Ok(TestResult {
        statistic: d,
        p_value: Kolmogorov::new().survival(lambda),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Gumbel, Normal, Uniform};

    fn weyl(n: usize, alpha: f64, phase: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * alpha + phase) % 1.0).collect()
    }

    #[test]
    fn identical_distributions_pass() {
        let a = weyl(500, 0.754_877_666_2, 0.1);
        let b = weyl(500, 0.569_840_290_998, 0.7);
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.passes(0.05), "p={}", r.p_value);
    }

    #[test]
    fn shifted_distributions_fail() {
        let a = weyl(500, 0.754_877_666_2, 0.0);
        let b: Vec<f64> = weyl(500, 0.754_877_666_2, 0.0)
            .iter()
            .map(|x| x + 0.3)
            .collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(!r.passes(0.05));
        assert!(r.statistic > 0.25);
    }

    #[test]
    fn scale_difference_detected() {
        let a = weyl(800, 0.754_877_666_2, 0.0);
        let b: Vec<f64> = weyl(800, 0.569_840_290_998, 0.0)
            .iter()
            .map(|x| x * 2.0)
            .collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(!r.passes(0.05));
    }

    #[test]
    fn statistic_is_sup_difference() {
        // Two disjoint samples: D must be 1.
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = vec![11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0, 18.0];
        let r = ks_two_sample(&a, &b).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12);
        // With nₑ = 4 the asymptotic p-value bottoms out near 1.5e-4.
        assert!(r.p_value < 1e-3, "p={}", r.p_value);
    }

    #[test]
    fn one_sample_uniform_fit_passes() {
        let xs = weyl(1000, 0.618_033_988_749_894_9, 0.0);
        let u = Uniform::new(0.0, 1.0).unwrap();
        let r = ks_one_sample(&xs, &u).unwrap();
        assert!(r.passes(0.05), "p={}", r.p_value);
    }

    #[test]
    fn one_sample_wrong_model_fails() {
        let xs = weyl(1000, 0.618_033_988_749_894_9, 0.0);
        let n = Normal::new(0.5, 0.05).unwrap(); // far too concentrated
        let r = ks_one_sample(&xs, &n).unwrap();
        assert!(!r.passes(0.05));
    }

    #[test]
    fn one_sample_gumbel_synthetic_quantiles_pass() {
        // Gumbel sample via inverse-CDF of a uniform grid: best-case fit.
        let g = Gumbel::new(100.0, 5.0).unwrap();
        let xs: Vec<f64> = (1..500)
            .map(|i| g.quantile(i as f64 / 500.0).unwrap())
            .collect();
        let r = ks_one_sample(&xs, &g).unwrap();
        assert!(r.passes(0.05), "p={}", r.p_value);
    }

    #[test]
    fn small_samples_rejected() {
        let a = vec![1.0; 4];
        let b = vec![2.0; 100];
        assert!(ks_two_sample(&a, &b).is_err());
        let u = Uniform::new(0.0, 1.0).unwrap();
        assert!(ks_one_sample(&a, &u).is_err());
    }

    #[test]
    fn ties_handled() {
        let a = vec![1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        let b = vec![1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.statistic <= 1.0 && r.statistic >= 0.0);
        assert!(r.passes(0.05));
    }
}
