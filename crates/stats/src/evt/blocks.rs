//! Block-maxima and peaks-over-threshold extraction.

use crate::error::check_len;
use crate::StatsError;

/// Split `sample` into consecutive blocks of `block_size` and return the
/// maximum of each block. A trailing partial block is discarded (standard
/// practice — a short block's maximum is biased low).
///
/// # Errors
///
/// * [`StatsError::InvalidArgument`] if `block_size == 0`;
/// * [`StatsError::InsufficientData`] if fewer than 2 complete blocks fit.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), proxima_stats::StatsError> {
/// use proxima_stats::evt::block_maxima;
///
/// let maxima = block_maxima(&[1.0, 5.0, 2.0, 7.0, 3.0], 2)?;
/// assert_eq!(maxima, vec![5.0, 7.0]); // trailing 3.0 discarded
/// # Ok(())
/// # }
/// ```
pub fn block_maxima(sample: &[f64], block_size: usize) -> Result<Vec<f64>, StatsError> {
    if block_size == 0 {
        return Err(StatsError::InvalidArgument {
            what: "block_size must be at least 1",
        });
    }
    check_len(sample, 2 * block_size)?;
    Ok(sample
        .chunks_exact(block_size)
        .map(|chunk| chunk.iter().copied().fold(f64::NEG_INFINITY, f64::max))
        .collect())
}

/// Return the observations strictly above `threshold` (the *exceedances*,
/// kept at their original values — subtract the threshold yourself if you
/// need excesses).
///
/// # Errors
///
/// Returns [`StatsError::NonFiniteData`] if the sample contains NaN and
/// [`StatsError::InsufficientData`] if fewer than 10 observations exceed the
/// threshold (too few for a stable GPD fit).
pub fn peaks_over_threshold(sample: &[f64], threshold: f64) -> Result<Vec<f64>, StatsError> {
    crate::error::check_finite(sample)?;
    let peaks: Vec<f64> = sample.iter().copied().filter(|&x| x > threshold).collect();
    if peaks.len() < 10 {
        return Err(StatsError::InsufficientData {
            needed: 10,
            got: peaks.len(),
        });
    }
    Ok(peaks)
}

/// Outcome of the automatic block-size search.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSizeChoice {
    /// The selected block size.
    pub block_size: usize,
    /// Anderson-Darling statistic of the Gumbel fit at that size (smaller
    /// is better).
    pub ad_statistic: f64,
    /// All candidates that were evaluated, as `(block_size, A²)` pairs.
    pub candidates: Vec<(usize, f64)>,
}

/// Pick a block size from `candidates` by fitting a Gumbel to each candidate
/// block-maxima set and choosing the size with the smallest Anderson-Darling
/// statistic (the best tail fit).
///
/// This mirrors the MBPTA practice of scanning block sizes until the
/// extremal model stabilizes: too small a block contaminates the maxima
/// with the bulk of the distribution, too large a block leaves too few
/// maxima to fit.
///
/// Candidates that leave fewer than 30 maxima or whose fit fails are
/// skipped.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if no candidate produces a
/// usable fit.
pub fn select_block_size(
    sample: &[f64],
    candidates: &[usize],
) -> Result<BlockSizeChoice, StatsError> {
    let mut evaluated = Vec::new();
    for &bs in candidates {
        if bs == 0 || sample.len() / bs < 30 {
            continue;
        }
        let Ok(maxima) = block_maxima(sample, bs) else {
            continue;
        };
        let Ok(gumbel) = super::fit_gumbel(&maxima) else {
            continue;
        };
        let Ok(gof) = crate::tests::anderson_darling(&maxima, &gumbel) else {
            continue;
        };
        evaluated.push((bs, gof.statistic));
    }
    let best = evaluated
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .ok_or(StatsError::InsufficientData { needed: 30, got: 0 })?;
    Ok(BlockSizeChoice {
        block_size: best.0,
        ad_statistic: best.1,
        candidates: evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxima_of_known_blocks() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        assert_eq!(block_maxima(&xs, 4).unwrap(), vec![4.0, 9.0]);
        assert_eq!(block_maxima(&xs, 2).unwrap(), vec![3.0, 4.0, 9.0, 6.0]);
    }

    #[test]
    fn trailing_partial_block_dropped() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(block_maxima(&xs, 2).unwrap(), vec![2.0, 4.0]);
    }

    #[test]
    fn maxima_dominate_sample_quantiles() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 997) as f64).collect();
        let maxima = block_maxima(&xs, 50).unwrap();
        let sample_median = crate::descriptive::median(&xs).unwrap();
        assert!(maxima.iter().all(|&m| m > sample_median));
    }

    #[test]
    fn errors_for_bad_inputs() {
        assert!(block_maxima(&[1.0, 2.0], 0).is_err());
        assert!(block_maxima(&[1.0, 2.0, 3.0], 2).is_err()); // < 2 full blocks
    }

    #[test]
    fn pot_filters_strictly_above() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let peaks = peaks_over_threshold(&xs, 89.0).unwrap();
        assert_eq!(peaks.len(), 10);
        assert!(peaks.iter().all(|&p| p > 89.0));
    }

    #[test]
    fn pot_too_few_peaks_errors() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(peaks_over_threshold(&xs, 95.0).is_err());
    }

    #[test]
    fn block_size_selection_prefers_gumbel_like_scale() {
        // Synthetic max-stable data: at any grouping the maxima stay
        // Gumbel; selection should succeed and report candidates.
        let g = crate::dist::Gumbel::new(100.0, 8.0).unwrap();
        use crate::dist::ContinuousDistribution;
        let xs: Vec<f64> = (1..4000)
            .map(|i| {
                let u = (i as f64 * 0.618_033_988_749_894_9) % 1.0;
                g.quantile(u.clamp(1e-9, 1.0 - 1e-9)).unwrap()
            })
            .collect();
        let choice = select_block_size(&xs, &[10, 20, 50, 100]).unwrap();
        assert!(choice.candidates.len() >= 2);
        assert!([10, 20, 50, 100].contains(&choice.block_size));
        assert!(choice.ad_statistic.is_finite());
    }

    #[test]
    fn block_size_selection_empty_candidates_errors() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(select_block_size(&xs, &[]).is_err());
        assert!(select_block_size(&xs, &[1000]).is_err());
    }
}
