//! Parameter estimation for the extreme-value family.

use crate::descriptive::pwm_sorted;
use crate::dist::{ContinuousDistribution, Gev, Gpd, Gumbel};
use crate::error::check_len;
use crate::float::exactly_zero;
use crate::special::{gamma, EULER_GAMMA};
use crate::tests::{anderson_darling, ks_one_sample};
use crate::StatsError;

fn sorted_copy(sample: &[f64]) -> Vec<f64> {
    let mut xs = sample.to_vec();
    xs.sort_by(|a, b| a.total_cmp(b));
    xs
}

/// Fit a [`Gumbel`] distribution by probability-weighted moments
/// (Landwehr, Matalas & Wallis 1979):
///
/// `β̂ = (2 b₁ − b₀)/ln 2`, `μ̂ = b₀ − γ β̂`.
///
/// PWM estimates are robust on the small maxima samples MBPTA works with
/// (60 maxima for the paper's 3,000 runs at block size 50); [`fit_gumbel`]
/// refines this estimate by maximum likelihood.
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] if fewer than 10 maxima;
/// * [`StatsError::DegenerateSample`] if all maxima are equal.
pub fn fit_gumbel_pwm(maxima: &[f64]) -> Result<Gumbel, StatsError> {
    check_len(maxima, 10)?;
    let sorted = sorted_copy(maxima);
    let b0 = pwm_sorted(&sorted, 0);
    let b1 = pwm_sorted(&sorted, 1);
    let beta = (2.0 * b1 - b0) / std::f64::consts::LN_2;
    if !(beta.is_finite() && beta > 0.0) {
        return Err(StatsError::DegenerateSample);
    }
    let mu = b0 - EULER_GAMMA * beta;
    Gumbel::new(mu, beta)
}

/// Fit a [`Gumbel`] distribution: PWM start, refined by maximum-likelihood
/// fixed-point iteration.
///
/// The Gumbel MLE satisfies the fixed point
/// `β = x̄ − Σ xᵢ e^{−xᵢ/β} / Σ e^{−xᵢ/β}`,
/// `μ = −β ln(n⁻¹ Σ e^{−xᵢ/β})`,
/// which converges monotonically from any reasonable start. If the
/// iteration fails to converge the PWM estimate is returned (it is already
/// consistent).
///
/// # Errors
///
/// Same as [`fit_gumbel_pwm`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), proxima_stats::StatsError> {
/// use proxima_stats::dist::ContinuousDistribution;
/// use proxima_stats::evt::fit_gumbel;
///
/// // Maxima drawn (by inverse CDF) from Gumbel(100, 5).
/// let truth = proxima_stats::dist::Gumbel::new(100.0, 5.0)?;
/// let maxima: Vec<f64> = (1..200)
///     .map(|i| truth.quantile(i as f64 / 200.0))
///     .collect::<Result<_, _>>()?;
/// let fitted = fit_gumbel(&maxima)?;
/// assert!((fitted.mu() - 100.0).abs() < 1.0);
/// assert!((fitted.beta() - 5.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
pub fn fit_gumbel(maxima: &[f64]) -> Result<Gumbel, StatsError> {
    let pwm = fit_gumbel_pwm(maxima)?;
    let n = maxima.len() as f64;
    let mean: f64 = maxima.iter().sum::<f64>() / n;
    // Work on mean-centered data y = x − x̄ so the exponentials stay tame;
    // the common factor e^{−x̄/β} cancels in the MLE ratio, giving
    // β_next = −Σ yᵢ e^{−yᵢ/β} / Σ e^{−yᵢ/β}.
    let ys: Vec<f64> = maxima.iter().map(|&x| x - mean).collect();
    let mut beta = pwm.beta();
    let mut converged = false;
    for _ in 0..200 {
        let mut sum_e = 0.0;
        let mut sum_ye = 0.0;
        for &y in &ys {
            let e = (-y / beta).exp();
            sum_e += e;
            sum_ye += y * e;
        }
        let next_beta = -sum_ye / sum_e;
        let next_beta = if next_beta.is_finite() && next_beta > 0.0 {
            next_beta
        } else {
            beta * 0.5
        };
        if (next_beta - beta).abs() <= 1e-10 * beta {
            beta = next_beta;
            converged = true;
            break;
        }
        beta = next_beta;
    }
    if !converged {
        return Ok(pwm);
    }
    let sum_e: f64 = ys.iter().map(|&y| (-y / beta).exp()).sum();
    let mu = mean - beta * (sum_e / n).ln();
    Gumbel::new(mu, beta).or(Ok(pwm))
}

/// Fit a [`Gev`] distribution by probability-weighted moments
/// (Hosking, Wallis & Wood 1985).
///
/// With `b₀, b₁, b₂` the first three PWMs, the Hosking shape `k = −ξ` is
/// approximated by `k ≈ 7.8590 c + 2.9554 c²` where
/// `c = (2b₁−b₀)/(3b₂−b₀) − ln2/ln3`; scale and location follow in closed
/// form. Accurate for `−0.5 < k < 0.5`, the regime of interest for timing
/// data.
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] if fewer than 20 maxima;
/// * [`StatsError::DegenerateSample`] on zero-variation samples.
pub fn fit_gev(maxima: &[f64]) -> Result<Gev, StatsError> {
    check_len(maxima, 20)?;
    let sorted = sorted_copy(maxima);
    let b0 = pwm_sorted(&sorted, 0);
    let b1 = pwm_sorted(&sorted, 1);
    let b2 = pwm_sorted(&sorted, 2);
    let denom = 3.0 * b2 - b0;
    if exactly_zero(denom) || exactly_zero(2.0 * b1 - b0) {
        return Err(StatsError::DegenerateSample);
    }
    let c = (2.0 * b1 - b0) / denom - std::f64::consts::LN_2 / 3f64.ln();
    let k = 7.8590 * c + 2.9554 * c * c; // Hosking shape, k = −ξ
                                         // On near-degenerate samples the PWM differences are pure rounding
                                         // noise and their ratio can land far outside the Hosking domain
                                         // (|k| < 0.5). The closed forms below need Γ(1+k), so a shape at or
                                         // below −1 is a fit failure, never a panic.
    if k <= -1.0 {
        return Err(StatsError::NoConvergence {
            what: "gev pwm shape outside the Hosking domain",
        });
    }
    let (sigma, mu) = if k.abs() < 1e-6 {
        // Gumbel limit.
        let sigma = (2.0 * b1 - b0) / std::f64::consts::LN_2;
        (sigma, b0 - EULER_GAMMA * sigma)
    } else {
        let g = gamma(1.0 + k);
        let sigma = (2.0 * b1 - b0) * k / (g * (1.0 - 2f64.powf(-k)));
        let mu = b0 + sigma * (g - 1.0) / k;
        (sigma, mu)
    };
    if !(sigma.is_finite() && sigma > 0.0) {
        return Err(StatsError::DegenerateSample);
    }
    Gev::new(mu, sigma, -k)
}

/// Fit a [`Gpd`] to exceedances of `threshold` by probability-weighted
/// moments (Hosking & Wallis 1987).
///
/// With excesses `y = x − u` and `a₀ = E[Y]`, `a₁ = E[Y(1−F(Y))]` their
/// type-A PWMs: Hosking shape `k = a₀/(a₀ − 2a₁) − 2` (again `k = −ξ`) and
/// `σ = 2 a₀ a₁/(a₀ − 2a₁)`.
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] if fewer than 10 exceedances;
/// * [`StatsError::DegenerateSample`] on zero-variation excesses.
pub fn fit_gpd(sample: &[f64], threshold: f64) -> Result<Gpd, StatsError> {
    let peaks = super::peaks_over_threshold(sample, threshold)?;
    let excesses: Vec<f64> = peaks.iter().map(|&p| p - threshold).collect();
    let sorted = sorted_copy(&excesses);
    let b0 = pwm_sorted(&sorted, 0);
    let b1 = pwm_sorted(&sorted, 1);
    // Type-A PWM: a₁ = E[Y(1−F)] = b₀ − b₁ (b₁ is the type-B PWM E[Y·F]).
    let a0 = b0;
    let a1 = b0 - b1;
    let denom = a0 - 2.0 * a1;
    if exactly_zero(denom) {
        return Err(StatsError::DegenerateSample);
    }
    let k = a0 / denom - 2.0; // Hosking shape, k = −ξ
    let sigma = 2.0 * a0 * a1 / denom;
    if !(sigma.is_finite() && sigma > 0.0) {
        return Err(StatsError::DegenerateSample);
    }
    Gpd::new(threshold, sigma, -k)
}

/// Goodness-of-fit report for a fitted tail model.
#[derive(Debug, Clone, PartialEq)]
pub struct GofReport {
    /// One-sample KS result against the fitted model.
    pub ks: crate::tests::TestResult,
    /// Anderson-Darling result against the fitted model (may be absent if
    /// the model's support does not cover the data).
    pub ad: Option<crate::tests::TestResult>,
}

impl GofReport {
    /// `true` if the fit is acceptable at level `alpha` (KS must pass; AD
    /// must pass when available).
    pub fn acceptable(&self, alpha: f64) -> bool {
        self.ks.passes(alpha) && self.ad.is_none_or(|ad| ad.passes(alpha))
    }
}

/// Run the KS + AD goodness-of-fit battery of `sample` against `dist`.
///
/// Both tests treat `dist` as fully specified; with parameters estimated
/// from the same sample the resulting p-values are conservative, which is
/// the safe direction for an acceptance gate.
///
/// # Errors
///
/// Returns an error if the sample is too small for the KS test.
pub fn goodness_of_fit<D: ContinuousDistribution + ?Sized>(
    sample: &[f64],
    dist: &D,
) -> Result<GofReport, StatsError> {
    let ks = ks_one_sample(sample, dist)?;
    let ad = anderson_darling(sample, dist).ok();
    Ok(GofReport { ks, ad })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic "draws" from a distribution: inverse-CDF of a scrambled
    /// uniform grid (no RNG needed, stable across runs).
    fn quantile_grid<D: ContinuousDistribution>(d: &D, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = ((i as f64 + 0.5) * 0.618_033_988_749_894_9) % 1.0;
                d.quantile(u.clamp(1e-12, 1.0 - 1e-12)).unwrap()
            })
            .collect()
    }

    #[test]
    fn gumbel_pwm_recovers_parameters() {
        let truth = Gumbel::new(1000.0, 30.0).unwrap();
        let xs = quantile_grid(&truth, 500);
        let fit = fit_gumbel_pwm(&xs).unwrap();
        assert!((fit.mu() - 1000.0).abs() < 5.0, "mu={}", fit.mu());
        assert!((fit.beta() - 30.0).abs() < 3.0, "beta={}", fit.beta());
    }

    #[test]
    fn gumbel_mle_at_least_as_good_as_pwm() {
        let truth = Gumbel::new(50.0, 4.0).unwrap();
        let xs = quantile_grid(&truth, 300);
        let pwm = fit_gumbel_pwm(&xs).unwrap();
        let mle = fit_gumbel(&xs).unwrap();
        let ll = |g: &Gumbel| xs.iter().map(|&x| g.pdf(x).ln()).sum::<f64>();
        assert!(
            ll(&mle) >= ll(&pwm) - 1e-6,
            "MLE log-lik {} < PWM log-lik {}",
            ll(&mle),
            ll(&pwm)
        );
    }

    #[test]
    fn gev_recovers_negative_shape() {
        let truth = Gev::new(200.0, 10.0, -0.2).unwrap();
        let xs = quantile_grid(&truth, 2000);
        let fit = fit_gev(&xs).unwrap();
        assert!((fit.xi() + 0.2).abs() < 0.06, "xi={}", fit.xi());
        assert!((fit.mu() - 200.0).abs() < 2.0, "mu={}", fit.mu());
        assert!((fit.sigma() - 10.0).abs() < 1.5, "sigma={}", fit.sigma());
    }

    #[test]
    fn gev_recovers_positive_shape() {
        let truth = Gev::new(0.0, 1.0, 0.25).unwrap();
        let xs = quantile_grid(&truth, 3000);
        let fit = fit_gev(&xs).unwrap();
        assert!((fit.xi() - 0.25).abs() < 0.08, "xi={}", fit.xi());
    }

    #[test]
    fn gev_on_gumbel_data_finds_near_zero_shape() {
        let truth = Gumbel::new(10.0, 2.0).unwrap();
        let xs = quantile_grid(&truth, 3000);
        let fit = fit_gev(&xs).unwrap();
        assert!(fit.xi().abs() < 0.05, "xi={}", fit.xi());
    }

    #[test]
    fn gpd_recovers_parameters() {
        let truth = Gpd::new(100.0, 5.0, 0.1).unwrap();
        let tail = quantile_grid(&truth, 2000);
        let fit = fit_gpd(&tail, 100.0).unwrap();
        assert!((fit.sigma() - 5.0).abs() < 0.6, "sigma={}", fit.sigma());
        assert!((fit.xi() - 0.1).abs() < 0.08, "xi={}", fit.xi());
    }

    #[test]
    fn gpd_on_exponential_data_finds_zero_shape() {
        let truth = crate::dist::Exponential::new(0.5).unwrap();
        let xs: Vec<f64> = quantile_grid(&truth, 3000)
            .into_iter()
            .map(|x| 10.0 + x)
            .collect();
        let fit = fit_gpd(&xs, 10.0).unwrap();
        assert!(fit.xi().abs() < 0.06, "xi={}", fit.xi());
        assert!((fit.sigma() - 2.0).abs() < 0.2, "sigma={}", fit.sigma());
    }

    #[test]
    fn fitted_gumbel_passes_gof_on_its_own_data() {
        let truth = Gumbel::new(100.0, 8.0).unwrap();
        let xs = quantile_grid(&truth, 400);
        let fit = fit_gumbel(&xs).unwrap();
        let gof = goodness_of_fit(&xs, &fit).unwrap();
        assert!(gof.acceptable(0.05), "{gof:?}");
    }

    #[test]
    fn gumbel_fit_rejects_degenerate() {
        let xs = vec![5.0; 50];
        assert!(fit_gumbel_pwm(&xs).is_err());
        assert!(fit_gumbel(&xs).is_err());
    }

    #[test]
    fn small_samples_rejected() {
        let xs = vec![1.0, 2.0, 3.0];
        assert!(fit_gumbel_pwm(&xs).is_err());
        assert!(fit_gev(&xs).is_err());
    }

    #[test]
    fn gev_fit_on_constant_sample_errors_instead_of_panicking() {
        // PWM differences on a constant sample are rounding noise; the
        // implied Hosking shape can land below −1, where Γ(1+k) is
        // undefined. Regression: this used to panic inside ln_gamma.
        for n in [20usize, 64, 100, 500] {
            let xs = vec![500.0f64; n];
            assert!(fit_gev(&xs).is_err(), "n={n}");
        }
    }

    #[test]
    fn extrapolated_tail_upper_bounds_empirical_tail() {
        // Soundness shape-check: the fitted Gumbel exceedance at the
        // empirical 1/n level should not be far below the observed maximum.
        let truth = Gumbel::new(1000.0, 20.0).unwrap();
        let xs = quantile_grid(&truth, 1000);
        let fit = fit_gumbel(&xs).unwrap();
        let observed_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let q = fit.exceedance_quantile(1e-4).unwrap();
        assert!(
            q > observed_max - 3.0 * fit.beta(),
            "q={q} max={observed_max}"
        );
    }
}
