//! MBPTA-CV: exponential-tail fitting guided by the residual coefficient
//! of variation.
//!
//! MBPTA-CV (Abella et al., "Measurement-Based Worst-Case Execution Time
//! Estimation Using the Coefficient of Variation", ACM TODAES 2017 — the
//! same group's successor to the block-maxima process used in the DATE
//! 2017 paper) exploits a classical characterization: a distribution's
//! tail is exponential **iff** the *residual coefficient of variation*
//!
//! `CV(u) = std(X − u | X > u) / mean(X − u | X > u)`
//!
//! tends to 1 as the threshold `u` grows. The method walks thresholds from
//! the highest order statistics downward, keeps the largest exceedance set
//! whose residual CV is statistically compatible with 1, and fits an
//! exponential tail (a GPD with ξ = 0) to those exceedances. Light-tailed
//! (CV < 1) regions are also accepted, the exponential fit then being an
//! upper bound.

use crate::descriptive::{mean, std_dev};
use crate::dist::Exponential;
use crate::StatsError;

/// One point of the residual-CV plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvPoint {
    /// Number of exceedances used (tail size).
    pub tail_size: usize,
    /// Threshold (the order statistic below the tail).
    pub threshold: f64,
    /// Residual coefficient of variation of the excesses.
    pub cv: f64,
}

/// The residual-CV plot: `CV(u)` for tails of decreasing size, the
/// diagnostic picture MBPTA-CV reads.
///
/// Tail sizes run from `min_tail` up to `max_tail` (clamped to n−1),
/// thresholds being the corresponding order statistics.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if the sample cannot support
/// `min_tail` exceedances.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), proxima_stats::StatsError> {
/// use proxima_stats::evt::cv_plot;
///
/// let xs: Vec<f64> = (1..2000).map(|i| (i as f64).ln() * 100.0).collect();
/// let plot = cv_plot(&xs, 10, 200)?;
/// assert!(plot.len() > 100);
/// # Ok(())
/// # }
/// ```
pub fn cv_plot(
    sample: &[f64],
    min_tail: usize,
    max_tail: usize,
) -> Result<Vec<CvPoint>, StatsError> {
    if min_tail < 5 {
        return Err(StatsError::InvalidArgument {
            what: "cv plot needs at least 5 exceedances per point",
        });
    }
    crate::error::check_len(sample, min_tail + 1)?;
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let max_tail = max_tail.min(n - 1);
    let mut points = Vec::new();
    for k in min_tail..=max_tail {
        let threshold = sorted[n - k - 1];
        let excesses: Vec<f64> = sorted[n - k..].iter().map(|&x| x - threshold).collect();
        let m = mean(&excesses)?;
        if m <= 0.0 {
            continue; // ties at the threshold
        }
        let s = std_dev(&excesses)?;
        points.push(CvPoint {
            tail_size: k,
            threshold,
            cv: s / m,
        });
    }
    if points.is_empty() {
        return Err(StatsError::DegenerateSample);
    }
    Ok(points)
}

/// Result of the MBPTA-CV tail selection and fit.
#[derive(Debug, Clone, PartialEq)]
pub struct CvFit {
    /// The selected threshold.
    pub threshold: f64,
    /// Number of exceedances the fit used.
    pub tail_size: usize,
    /// Residual CV at the selected threshold.
    pub cv: f64,
    /// The fitted exponential tail over the threshold (rate = 1/mean
    /// excess). `P(X > threshold + y | X > threshold) = exp(−λy)`.
    pub tail: Exponential,
    /// Fraction of the sample above the threshold: `P(X > threshold)`.
    pub tail_fraction: f64,
}

impl CvFit {
    /// Per-observation exceedance probability of `x` under the fitted
    /// exponential tail: `tail_fraction × exp(−λ(x − threshold))`.
    pub fn exceedance_probability(&self, x: f64) -> f64 {
        if x <= self.threshold {
            return self.tail_fraction;
        }
        use crate::dist::ContinuousDistribution;
        self.tail_fraction * self.tail.survival(x - self.threshold)
    }

    /// The execution-time budget exceeded with per-observation probability
    /// `p` (the MBPTA-CV pWCET estimate).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < p <
    /// tail_fraction` (budgets inside the empirical range should be read
    /// off the ECDF instead).
    pub fn budget_for(&self, p: f64) -> Result<f64, StatsError> {
        if !(p > 0.0 && p < self.tail_fraction) {
            return Err(StatsError::InvalidArgument {
                what: "cv budget requires 0 < p < tail fraction",
            });
        }
        // tail_fraction·exp(−λ y) = p  ⇒  y = ln(tail_fraction/p)/λ.
        let y = (self.tail_fraction / p).ln() / self.tail.rate();
        Ok(self.threshold + y)
    }
}

/// The asymptotic 95% acceptance band for |CV − 1| at tail size `k`:
/// the residual CV of an exponential sample of size `k` is approximately
/// `Normal(1, 1/√k)`.
fn cv_band(k: usize) -> f64 {
    1.96 / (k as f64).sqrt()
}

/// MBPTA-CV tail selection: walk tail sizes from `max_tail` down to
/// `min_tail` and keep the **largest** exceedance set whose residual CV is
/// within the 95% band around 1 (or below it — light tails are upper-
/// bounded by the exponential fit).
///
/// # Errors
///
/// * anything [`cv_plot`] returns;
/// * [`StatsError::NoConvergence`] if no tail size is compatible with an
///   exponential-or-lighter tail (a heavy tail: MBPTA-CV must refuse, as
///   a ξ > 0 tail cannot be soundly upper-bounded by an exponential).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), proxima_stats::StatsError> {
/// use proxima_stats::evt::fit_cv_tail;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let xs: Vec<f64> = (0..3000)
///     .map(|_| 1000.0 - 50.0 * (1.0 - rng.gen::<f64>()).ln())
///     .collect();
/// let fit = fit_cv_tail(&xs, 20, 300)?;
/// assert!((fit.cv - 1.0).abs() < 0.3); // exponential data: CV ≈ 1
/// # Ok(())
/// # }
/// ```
pub fn fit_cv_tail(sample: &[f64], min_tail: usize, max_tail: usize) -> Result<CvFit, StatsError> {
    let plot = cv_plot(sample, min_tail, max_tail)?;
    let n = sample.len() as f64;
    // Largest tail whose CV is ≤ 1 + band (exponential or lighter).
    let chosen = plot
        .iter()
        .rev() // largest tail sizes first
        .find(|p| p.cv <= 1.0 + cv_band(p.tail_size))
        .copied()
        .ok_or(StatsError::NoConvergence {
            what: "no threshold with exponential-compatible residual CV",
        })?;
    let excesses: Vec<f64> = sample
        .iter()
        .filter(|&&x| x > chosen.threshold)
        .map(|&x| x - chosen.threshold)
        .collect();
    let m = mean(&excesses)?;
    Ok(CvFit {
        threshold: chosen.threshold,
        tail_size: excesses.len(),
        cv: chosen.cv,
        tail: Exponential::new(1.0 / m)?,
        tail_fraction: excesses.len() as f64 / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDistribution, Exponential as ExpDist, Gpd, Uniform};
    use rand::{Rng, SeedableRng};

    fn draws<D: ContinuousDistribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                d.quantile(rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12))
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn exponential_tail_has_cv_one() {
        let xs = draws(&ExpDist::new(0.01).unwrap(), 4000, 1);
        let fit = fit_cv_tail(&xs, 20, 400).unwrap();
        assert!((fit.cv - 1.0).abs() < 0.2, "cv={}", fit.cv);
        // Rate recovered: mean excess of Exp(λ) is 1/λ at any threshold.
        assert!(
            (fit.tail.rate() / 0.01 - 1.0).abs() < 0.3,
            "rate={}",
            fit.tail.rate()
        );
    }

    #[test]
    fn light_tail_accepted_with_cv_below_one() {
        // Uniform: bounded, residual CV < 1 in the tail.
        let xs = draws(&Uniform::new(0.0, 100.0).unwrap(), 4000, 2);
        let fit = fit_cv_tail(&xs, 20, 400).unwrap();
        assert!(fit.cv < 1.1, "cv={}", fit.cv);
    }

    #[test]
    fn heavy_tail_rejected() {
        // GPD with ξ = 0.6: residual CV > 1 at every threshold; the method
        // must refuse rather than underestimate.
        let xs = draws(&Gpd::new(0.0, 1.0, 0.6).unwrap(), 4000, 3);
        let result = fit_cv_tail(&xs, 30, 200);
        assert!(
            matches!(result, Err(StatsError::NoConvergence { .. })),
            "heavy tail must be refused, got {result:?}"
        );
    }

    #[test]
    fn budget_inverts_exceedance() {
        let xs = draws(&ExpDist::new(0.05).unwrap(), 3000, 4);
        let fit = fit_cv_tail(&xs, 20, 300).unwrap();
        for &p in &[1e-6, 1e-9, 1e-12] {
            let b = fit.budget_for(p).unwrap();
            let back = fit.exceedance_probability(b);
            assert!((back / p - 1.0).abs() < 1e-9, "p={p} back={back}");
        }
    }

    #[test]
    fn budget_monotone_and_above_threshold() {
        let xs = draws(&ExpDist::new(0.05).unwrap(), 3000, 5);
        let fit = fit_cv_tail(&xs, 20, 300).unwrap();
        let b6 = fit.budget_for(1e-6).unwrap();
        let b12 = fit.budget_for(1e-12).unwrap();
        assert!(fit.threshold < b6 && b6 < b12);
    }

    #[test]
    fn invalid_probability_rejected() {
        let xs = draws(&ExpDist::new(1.0).unwrap(), 1000, 6);
        let fit = fit_cv_tail(&xs, 20, 100).unwrap();
        assert!(fit.budget_for(0.0).is_err());
        assert!(fit.budget_for(0.9).is_err()); // above the tail fraction
    }

    #[test]
    fn cv_plot_shapes() {
        let xs = draws(&ExpDist::new(1.0).unwrap(), 2000, 7);
        let plot = cv_plot(&xs, 10, 200).unwrap();
        assert!(plot.len() >= 150);
        for w in plot.windows(2) {
            assert!(w[1].tail_size > w[0].tail_size);
            assert!(w[1].threshold <= w[0].threshold);
        }
    }

    #[test]
    fn cv_plot_input_validation() {
        assert!(cv_plot(&[1.0, 2.0], 10, 50).is_err());
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(cv_plot(&xs, 2, 50).is_err());
    }
}
