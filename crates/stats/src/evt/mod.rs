//! Extreme value theory: sample preparation and tail fitting.
//!
//! The MBPTA pipeline reduces a campaign of execution times to a fitted
//! extreme-value tail in three steps:
//!
//! 1. extract **block maxima** ([`block_maxima`]) or **peaks over
//!    threshold** ([`peaks_over_threshold`]);
//! 2. fit a tail model — [`fit_gumbel`] (the production pWCET model),
//!    [`fit_gev`] (shape diagnostic) or [`fit_gpd`] (POT cross-check);
//! 3. assess the fit ([`goodness_of_fit`], [`select_block_size`]).
//!
//! Fits use probability-weighted moments (Hosking et al.), with the Gumbel
//! additionally refined by maximum-likelihood fixed-point iteration; both
//! are standard for MBPTA-scale sample sizes (tens to hundreds of maxima).

mod blocks;
mod cv;
mod fit;

pub use blocks::{block_maxima, peaks_over_threshold, select_block_size, BlockSizeChoice};
pub use cv::{cv_plot, fit_cv_tail, CvFit, CvPoint};
pub use fit::{fit_gev, fit_gpd, fit_gumbel, fit_gumbel_pwm, goodness_of_fit, GofReport};
