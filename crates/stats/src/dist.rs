//! Continuous probability distributions.
//!
//! The distribution zoo MBPTA needs: the extreme-value family
//! ([`Gumbel`], [`Gev`], [`Gpd`]) for tail modelling, [`Exponential`] for
//! MBPTA-CV, [`ChiSquared`] and [`Kolmogorov`] as null distributions of the
//! i.i.d. tests, and [`Normal`] / [`Uniform`] as reference models in tests
//! and diagnostics.
//!
//! Everything implements [`ContinuousDistribution`]; tail-critical methods
//! (`survival`, `exceedance_quantile`) are computed in log-space so that
//! exceedance probabilities down to 10⁻¹⁵ keep full relative precision.
//!
//! # Examples
//!
//! ```
//! use proxima_stats::dist::{ContinuousDistribution, Gumbel};
//!
//! let g = Gumbel::new(100.0, 5.0)?;
//! let x = g.quantile(0.999)?;
//! assert!((g.cdf(x) - 0.999).abs() < 1e-12);
//! # Ok::<(), proxima_stats::StatsError>(())
//! ```

use crate::float::exactly_zero;
use crate::special::{gamma_p, gamma_q, ln_gamma, std_normal_cdf, std_normal_quantile};
use crate::StatsError;

/// A continuous distribution on (a subset of) the real line.
///
/// `survival` has a default implementation as `1 − cdf(x)`; distributions
/// whose far tail matters override it with a numerically exact form.
pub trait ContinuousDistribution {
    /// Cumulative distribution function `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Probability density function at `x` (0 outside the support).
    fn pdf(&self, x: f64) -> f64;

    /// The quantile function: the `x` with `cdf(x) = p`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < p < 1`.
    fn quantile(&self, p: f64) -> Result<f64, StatsError>;

    /// Survival function `P(X > x) = 1 − cdf(x)`.
    fn survival(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// The `x` with `survival(x) = p`. The default inverts via
    /// `quantile(1 − p)`, which loses relative precision once `p`
    /// approaches machine epsilon; tail distributions override it with an
    /// exact log-space inversion.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < p < 1`.
    fn exceedance_quantile(&self, p: f64) -> Result<f64, StatsError> {
        check_probability(p)?;
        self.quantile(1.0 - p)
    }
}

/// Reject probabilities outside the open unit interval.
fn check_probability(p: f64) -> Result<(), StatsError> {
    if p > 0.0 && p < 1.0 {
        Ok(())
    } else {
        Err(StatsError::InvalidArgument {
            what: "probability must be in (0, 1)",
        })
    }
}

/// Reject non-finite location / non-positive scale parameters.
fn check_location_scale(location: f64, scale: f64) -> Result<(), StatsError> {
    if !location.is_finite() {
        return Err(StatsError::InvalidArgument {
            what: "location parameter must be finite",
        });
    }
    if !(scale.is_finite() && scale > 0.0) {
        return Err(StatsError::InvalidArgument {
            what: "scale parameter must be finite and positive",
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Gumbel
// ---------------------------------------------------------------------------

/// The Gumbel (type-I extreme value) distribution, the pWCET tail model:
/// `F(x) = exp(−exp(−(x − μ)/β))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gumbel {
    mu: f64,
    beta: f64,
}

impl Gumbel {
    /// Create a Gumbel with location `mu` and scale `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if `mu` is not finite or
    /// `beta` is not finite and positive.
    pub fn new(mu: f64, beta: f64) -> Result<Self, StatsError> {
        check_location_scale(mu, beta)?;
        Ok(Gumbel { mu, beta })
    }

    /// Location parameter μ (the mode).
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The `x` whose survival probability is `p`: `S(x) = p`, exact for
    /// `p` as small as 10⁻¹⁵ (where `quantile(1 − p)` would round to the
    /// same float for every tiny `p`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < p < 1`.
    pub fn exceedance_quantile(&self, p: f64) -> Result<f64, StatsError> {
        check_probability(p)?;
        // S(x) = p  ⇔  exp(−e^{−z}) = 1 − p  ⇔  z = −ln(−ln(1 − p)).
        let z = -(-(-p).ln_1p()).ln();
        Ok(self.mu + self.beta * z)
    }
}

impl ContinuousDistribution for Gumbel {
    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.beta;
        (-(-z).exp()).exp()
    }

    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.beta;
        (-z - (-z).exp()).exp() / self.beta
    }

    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        check_probability(p)?;
        Ok(self.mu - self.beta * (-p.ln()).ln())
    }

    fn survival(&self, x: f64) -> f64 {
        // 1 − exp(−e^{−z}) via expm1: full relative precision in the far
        // tail where the CDF is indistinguishable from 1.
        let z = (x - self.mu) / self.beta;
        -(-(-z).exp()).exp_m1()
    }

    fn exceedance_quantile(&self, p: f64) -> Result<f64, StatsError> {
        Gumbel::exceedance_quantile(self, p)
    }
}

// ---------------------------------------------------------------------------
// GEV
// ---------------------------------------------------------------------------

/// The generalized extreme value distribution with shape `xi`
/// (`xi = 0` is the Gumbel limit; `xi > 0` heavy, `xi < 0` bounded).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gev {
    mu: f64,
    sigma: f64,
    xi: f64,
}

impl Gev {
    /// Create a GEV with location `mu`, scale `sigma` and shape `xi`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] on a non-finite parameter or
    /// non-positive scale.
    pub fn new(mu: f64, sigma: f64, xi: f64) -> Result<Self, StatsError> {
        check_location_scale(mu, sigma)?;
        if !xi.is_finite() {
            return Err(StatsError::InvalidArgument {
                what: "shape parameter must be finite",
            });
        }
        Ok(Gev { mu, sigma, xi })
    }

    /// Location parameter μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Shape parameter ξ.
    pub fn xi(&self) -> f64 {
        self.xi
    }

    /// `t(x)^{−1/ξ}` (the argument of the outer exponential), or `None`
    /// outside the support. Computed as `exp(−ln(1 + ξz)/ξ)`, which is
    /// stable uniformly in ξ down to the Gumbel limit.
    fn outer_arg(&self, x: f64) -> Option<f64> {
        let z = (x - self.mu) / self.sigma;
        if exactly_zero(self.xi) {
            return Some((-z).exp());
        }
        let t = 1.0 + self.xi * z;
        if t <= 0.0 {
            None
        } else {
            Some((-(self.xi * z).ln_1p() / self.xi).exp())
        }
    }
}

impl ContinuousDistribution for Gev {
    fn cdf(&self, x: f64) -> f64 {
        match self.outer_arg(x) {
            Some(a) => (-a).exp(),
            // t ≤ 0: below the lower endpoint (ξ > 0) or above the upper
            // endpoint (ξ < 0).
            None => {
                if self.xi > 0.0 {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        if exactly_zero(self.xi) {
            return (-z - (-z).exp()).exp() / self.sigma;
        }
        let t = 1.0 + self.xi * z;
        if t <= 0.0 {
            return 0.0;
        }
        let a = (-(self.xi * z).ln_1p() / self.xi).exp();
        a / t * (-a).exp() / self.sigma
    }

    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        check_probability(p)?;
        let l = -p.ln(); // −ln p > 0
        if exactly_zero(self.xi) {
            Ok(self.mu - self.sigma * l.ln())
        } else {
            // ((−ln p)^{−ξ} − 1)/ξ via expm1, stable as ξ → 0.
            Ok(self.mu + self.sigma * (-self.xi * l.ln()).exp_m1() / self.xi)
        }
    }

    fn survival(&self, x: f64) -> f64 {
        match self.outer_arg(x) {
            Some(a) => -(-a).exp_m1(),
            None => {
                if self.xi > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// GPD
// ---------------------------------------------------------------------------

/// The generalized Pareto distribution over a threshold `mu`, the
/// peaks-over-threshold tail model: `S(x) = (1 + ξ(x − μ)/σ)^{−1/ξ}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gpd {
    mu: f64,
    sigma: f64,
    xi: f64,
}

impl Gpd {
    /// Create a GPD with threshold (location) `mu`, scale `sigma` and shape
    /// `xi`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] on a non-finite parameter or
    /// non-positive scale.
    pub fn new(mu: f64, sigma: f64, xi: f64) -> Result<Self, StatsError> {
        check_location_scale(mu, sigma)?;
        if !xi.is_finite() {
            return Err(StatsError::InvalidArgument {
                what: "shape parameter must be finite",
            });
        }
        Ok(Gpd { mu, sigma, xi })
    }

    /// Threshold (location) parameter μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The threshold the exceedances were taken over (alias of [`Gpd::mu`]).
    pub fn threshold(&self) -> f64 {
        self.mu
    }

    /// Scale parameter σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Shape parameter ξ.
    pub fn xi(&self) -> f64 {
        self.xi
    }

    /// `−ln S(x)` for `x` inside the support, `None` above the upper
    /// endpoint (ξ < 0 only).
    fn neg_ln_survival(&self, y: f64) -> Option<f64> {
        if exactly_zero(self.xi) {
            return Some(y);
        }
        let t = 1.0 + self.xi * y;
        if t <= 0.0 {
            None
        } else {
            Some((self.xi * y).ln_1p() / self.xi)
        }
    }
}

impl ContinuousDistribution for Gpd {
    fn cdf(&self, x: f64) -> f64 {
        let y = (x - self.mu) / self.sigma;
        if y <= 0.0 {
            return 0.0;
        }
        match self.neg_ln_survival(y) {
            Some(a) => -(-a).exp_m1(),
            None => 1.0,
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        let y = (x - self.mu) / self.sigma;
        if y < 0.0 {
            return 0.0;
        }
        if exactly_zero(self.xi) {
            return (-y).exp() / self.sigma;
        }
        let t = 1.0 + self.xi * y;
        if t <= 0.0 {
            return 0.0;
        }
        (-(1.0 / self.xi + 1.0) * (self.xi * y).ln_1p()).exp() / self.sigma
    }

    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        check_probability(p)?;
        let l = -(-p).ln_1p(); // −ln(1 − p) > 0
        if exactly_zero(self.xi) {
            Ok(self.mu + self.sigma * l)
        } else {
            // ((1 − p)^{−ξ} − 1)/ξ via expm1, stable as ξ → 0.
            Ok(self.mu + self.sigma * (self.xi * l).exp_m1() / self.xi)
        }
    }

    fn survival(&self, x: f64) -> f64 {
        let y = (x - self.mu) / self.sigma;
        if y <= 0.0 {
            return 1.0;
        }
        match self.neg_ln_survival(y) {
            Some(a) => (-a).exp(),
            None => 0.0,
        }
    }

    fn exceedance_quantile(&self, p: f64) -> Result<f64, StatsError> {
        check_probability(p)?;
        // S(x) = p  ⇔  y = (p^{−ξ} − 1)/ξ, via expm1 for the ξ → 0 limit.
        let y = if exactly_zero(self.xi) {
            -p.ln()
        } else {
            (-self.xi * p.ln()).exp_m1() / self.xi
        };
        Ok(self.mu + self.sigma * y)
    }
}

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

/// The exponential distribution with rate λ, the MBPTA-CV tail model:
/// `S(x) = exp(−λx)` for `x ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create an exponential with rate `rate` (mean `1/rate`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `rate` is finite and
    /// positive.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(StatsError::InvalidArgument {
                what: "exponential rate must be finite and positive",
            });
        }
        Ok(Exponential { rate })
    }

    /// Rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDistribution for Exponential {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        check_probability(p)?;
        Ok(-(-p).ln_1p() / self.rate)
    }

    fn survival(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }
}

// ---------------------------------------------------------------------------
// Normal
// ---------------------------------------------------------------------------

/// The normal distribution `N(μ, σ²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create a normal with mean `mu` and standard deviation `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if `mu` is not finite or
    /// `sigma` is not finite and positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        check_location_scale(mu, sigma)?;
        Ok(Normal { mu, sigma })
    }

    /// Mean μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDistribution for Normal {
    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        check_probability(p)?;
        Ok(self.mu + self.sigma * std_normal_quantile(p))
    }

    fn survival(&self, x: f64) -> f64 {
        crate::special::std_normal_sf((x - self.mu) / self.sigma)
    }
}

// ---------------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------------

/// The uniform distribution on `[a, b]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// Create a uniform distribution on `[a, b]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `a < b` and both are
    /// finite.
    pub fn new(a: f64, b: f64) -> Result<Self, StatsError> {
        if !(a.is_finite() && b.is_finite() && a < b) {
            return Err(StatsError::InvalidArgument {
                what: "uniform bounds must be finite with a < b",
            });
        }
        Ok(Uniform { a, b })
    }

    /// Lower bound `a`.
    pub fn lower(&self) -> f64 {
        self.a
    }

    /// Upper bound `b`.
    pub fn upper(&self) -> f64 {
        self.b
    }
}

impl ContinuousDistribution for Uniform {
    fn cdf(&self, x: f64) -> f64 {
        ((x - self.a) / (self.b - self.a)).clamp(0.0, 1.0)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.a || x > self.b {
            0.0
        } else {
            1.0 / (self.b - self.a)
        }
    }

    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        check_probability(p)?;
        Ok(self.a + p * (self.b - self.a))
    }
}

// ---------------------------------------------------------------------------
// Chi-squared
// ---------------------------------------------------------------------------

/// The χ² distribution with `df` degrees of freedom (real-valued), the null
/// distribution of the Ljung-Box statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    df: f64,
}

impl ChiSquared {
    /// Create a χ² distribution with `df` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `df` is finite and
    /// positive.
    pub fn new(df: f64) -> Result<Self, StatsError> {
        if !(df.is_finite() && df > 0.0) {
            return Err(StatsError::InvalidArgument {
                what: "chi-squared degrees of freedom must be finite and positive",
            });
        }
        Ok(ChiSquared { df })
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }
}

impl ContinuousDistribution for ChiSquared {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(0.5 * self.df, 0.5 * x)
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let half_df = 0.5 * self.df;
        ((half_df - 1.0) * x.ln() - 0.5 * x - half_df * std::f64::consts::LN_2 - ln_gamma(half_df))
            .exp()
    }

    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        check_probability(p)?;
        // Bracket the root, then bisect: the CDF is smooth and strictly
        // increasing on (0, ∞), so 200 halvings reach full f64 precision.
        let mut hi = self.df.max(1.0);
        while self.cdf(hi) < p {
            hi *= 2.0;
            if !hi.is_finite() {
                return Err(StatsError::NoConvergence {
                    what: "chi-squared quantile bracket",
                });
            }
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    fn survival(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            gamma_q(0.5 * self.df, 0.5 * x)
        }
    }
}

// ---------------------------------------------------------------------------
// Kolmogorov
// ---------------------------------------------------------------------------

/// The asymptotic Kolmogorov distribution of `√n·D`, used for KS p-values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Kolmogorov;

impl Kolmogorov {
    /// The Kolmogorov distribution (it has no parameters).
    pub fn new() -> Self {
        Kolmogorov
    }

    /// `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2j²λ²)` — the survival function,
    /// evaluated by the alternating series (Numerical Recipes `probks`):
    /// returns 1 when the series has not converged, which only happens for
    /// tiny λ where the true value is ≈ 1.
    pub fn survival(&self, lambda: f64) -> f64 {
        if lambda <= 0.0 {
            return 1.0;
        }
        let a2 = -2.0 * lambda * lambda;
        let mut fac = 2.0;
        let mut sum = 0.0;
        let mut prev_term = 0.0f64;
        for j in 1..=100 {
            let term = fac * (a2 * (j * j) as f64).exp();
            sum += term;
            if term.abs() <= 0.001 * prev_term || term.abs() <= 1e-12 * sum.abs() {
                return sum.clamp(0.0, 1.0);
            }
            fac = -fac;
            prev_term = term.abs();
        }
        1.0
    }

    /// `P(√n·D ≤ λ) = 1 − Q(λ)`.
    pub fn cdf(&self, lambda: f64) -> f64 {
        1.0 - self.survival(lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert!(Gumbel::new(0.0, 0.0).is_err());
        assert!(Gumbel::new(f64::NAN, 1.0).is_err());
        assert!(Gev::new(0.0, 1.0, f64::INFINITY).is_err());
        assert!(Gpd::new(0.0, -1.0, 0.1).is_err());
        assert!(Exponential::new(0.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(ChiSquared::new(0.0).is_err());
    }

    #[test]
    fn gumbel_cdf_quantile_round_trip() {
        let g = Gumbel::new(100.0, 5.0).unwrap();
        for &p in &[0.001, 0.1, 0.5, 0.9, 0.999] {
            let x = g.quantile(p).unwrap();
            assert!((g.cdf(x) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn gumbel_exceedance_quantile_far_tail() {
        let g = Gumbel::new(1000.0, 20.0).unwrap();
        for exp in 3..=15 {
            let p = 10f64.powi(-exp);
            let x = g.exceedance_quantile(p).unwrap();
            let s = g.survival(x);
            assert!((s / p - 1.0).abs() < 1e-9, "p={p} s={s}");
        }
    }

    #[test]
    fn gumbel_mode_is_density_peak() {
        let g = Gumbel::new(10.0, 2.0).unwrap();
        let at_mode = g.pdf(10.0);
        assert!(at_mode > g.pdf(9.0) && at_mode > g.pdf(11.0));
    }

    #[test]
    fn gev_gumbel_limit_matches() {
        let gumbel = Gumbel::new(50.0, 4.0).unwrap();
        let gev0 = Gev::new(50.0, 4.0, 0.0).unwrap();
        let gev_eps = Gev::new(50.0, 4.0, 1e-9).unwrap();
        for &x in &[40.0, 50.0, 60.0, 80.0] {
            assert!((gumbel.cdf(x) - gev0.cdf(x)).abs() < 1e-14);
            assert!((gumbel.cdf(x) - gev_eps.cdf(x)).abs() < 1e-7, "x={x}");
        }
    }

    #[test]
    fn gev_bounded_support_for_negative_shape() {
        // ξ < 0: upper endpoint at μ − σ/ξ.
        let g = Gev::new(0.0, 1.0, -0.5).unwrap();
        let endpoint = 2.0;
        assert_eq!(g.cdf(endpoint + 0.1), 1.0);
        assert_eq!(g.pdf(endpoint + 0.1), 0.0);
        assert_eq!(g.survival(endpoint + 0.1), 0.0);
        assert!(g.cdf(endpoint - 0.1) < 1.0);
    }

    #[test]
    fn gpd_exponential_limit_matches() {
        let gpd = Gpd::new(0.0, 2.0, 0.0).unwrap();
        let exp = Exponential::new(0.5).unwrap();
        for &x in &[0.5, 1.0, 5.0, 20.0] {
            assert!((gpd.cdf(x) - exp.cdf(x)).abs() < 1e-14, "x={x}");
        }
    }

    #[test]
    fn gpd_threshold_is_lower_endpoint() {
        let g = Gpd::new(100.0, 5.0, 0.1).unwrap();
        assert_eq!(g.cdf(99.0), 0.0);
        assert_eq!(g.pdf(99.0), 0.0);
        assert_eq!(g.survival(99.0), 1.0);
        assert!(g.cdf(101.0) > 0.0);
    }

    #[test]
    fn chi_squared_anchors() {
        // χ²(1) at 3.841 and χ²(10) at 18.307: the classic 5% critical
        // values.
        let c1 = ChiSquared::new(1.0).unwrap();
        assert!((c1.survival(3.841) - 0.05).abs() < 1e-3);
        let c10 = ChiSquared::new(10.0).unwrap();
        assert!((c10.survival(18.307) - 0.05).abs() < 1e-3);
        let q = c10.quantile(0.95).unwrap();
        assert!((q - 18.307).abs() < 1e-2, "q={q}");
    }

    #[test]
    fn normal_anchors() {
        let n = Normal::new(0.0, 1.0).unwrap();
        assert!((n.cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-9);
        assert!((n.quantile(0.975).unwrap() - 1.959_963_984_540_054).abs() < 1e-6);
    }

    #[test]
    fn kolmogorov_anchors() {
        // Q(1.36) ≈ 0.05 (the 5% two-sided KS critical value).
        let k = Kolmogorov::new();
        assert!((k.survival(1.36) - 0.0505).abs() < 2e-3);
        assert!(k.survival(0.0) == 1.0);
        assert!(k.survival(1e-3) > 0.999);
        assert!(k.survival(5.0) < 1e-10);
        assert!((k.cdf(1.36) + k.survival(1.36) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_density_integrates_to_one() {
        let u = Uniform::new(2.0, 6.0).unwrap();
        assert_eq!(u.pdf(4.0), 0.25);
        assert_eq!(u.pdf(1.0), 0.0);
        assert_eq!(u.cdf(6.5), 1.0);
        assert_eq!(u.quantile(0.5).unwrap(), 4.0);
        assert_eq!(u.lower(), 2.0);
        assert_eq!(u.upper(), 6.0);
    }

    #[test]
    fn exponential_memoryless_survival() {
        let e = Exponential::new(0.25).unwrap();
        let s = |x: f64| e.survival(x);
        assert!((s(4.0) * s(4.0) - s(8.0)).abs() < 1e-12);
        assert_eq!(e.rate(), 0.25);
    }
}
