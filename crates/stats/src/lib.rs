//! Statistics substrate for measurement-based probabilistic timing analysis.
//!
//! MBPTA (Cucu-Grosjean et al., ECRTS 2012; Fernandez et al., DATE 2017)
//! needs a small but precise statistical stack:
//!
//! * **i.i.d. validation** — the Ljung-Box independence test and the
//!   two-sample Kolmogorov-Smirnov identical-distribution test gate the
//!   applicability of extreme value theory to the measured execution times
//!   ([`tests`]);
//! * **extreme value theory** — block maxima / peaks-over-threshold
//!   extraction and Gumbel/GEV/GPD fitting produce the pWCET tail
//!   ([`evt`], [`dist`]);
//! * **supporting machinery** — special functions ([`special`]), descriptive
//!   statistics ([`descriptive`]), empirical CDFs ([`ecdf`]) and sample
//!   autocorrelation ([`autocorr`]).
//!
//! There is no canonical EVT-for-WCET library in the Rust ecosystem, so
//! everything here is implemented from first principles and validated in the
//! test suite against published critical values and closed-form identities.
//!
//! # Examples
//!
//! Fit a Gumbel tail to block maxima and query a rare quantile:
//!
//! ```
//! use proxima_stats::evt::{block_maxima, fit_gumbel};
//! use proxima_stats::dist::ContinuousDistribution;
//!
//! // A synthetic sample (e.g. execution times in cycles).
//! let sample: Vec<f64> = (0..1000).map(|i| 1000.0 + (i % 97) as f64).collect();
//! let maxima = block_maxima(&sample, 50)?;
//! let gumbel = fit_gumbel(&maxima)?;
//! let p_wcet = gumbel.quantile(1.0 - 1e-12)?;
//! assert!(p_wcet > 1000.0);
//! # Ok::<(), proxima_stats::StatsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autocorr;
pub mod descriptive;
pub mod dist;
pub mod ecdf;
pub mod evt;
pub mod float;
pub mod special;
pub mod tests;

mod error;

pub use error::StatsError;
