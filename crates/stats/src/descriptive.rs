//! Descriptive statistics: moments, quantiles and summaries.

use crate::error::{check_finite, check_len};
use crate::float::exactly_zero;
use crate::StatsError;

/// Arithmetic mean of a sample.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty sample and
/// [`StatsError::NonFiniteData`] if any value is NaN or infinite.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), proxima_stats::StatsError> {
/// let m = proxima_stats::descriptive::mean(&[1.0, 2.0, 3.0])?;
/// assert_eq!(m, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn mean(sample: &[f64]) -> Result<f64, StatsError> {
    check_len(sample, 1)?;
    Ok(sample.iter().sum::<f64>() / sample.len() as f64)
}

/// Unbiased (n−1) sample variance.
///
/// Uses a two-pass algorithm for numerical stability on the large,
/// tightly-clustered samples produced by timing campaigns.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if fewer than two observations.
pub fn variance(sample: &[f64]) -> Result<f64, StatsError> {
    check_len(sample, 2)?;
    let m = mean(sample)?;
    let ss: f64 = sample.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (sample.len() - 1) as f64)
}

/// Sample standard deviation (square root of the unbiased variance).
pub fn std_dev(sample: &[f64]) -> Result<f64, StatsError> {
    Ok(variance(sample)?.sqrt())
}

/// Coefficient of variation `σ / μ`.
///
/// # Errors
///
/// Returns [`StatsError::DegenerateSample`] if the mean is zero.
pub fn coefficient_of_variation(sample: &[f64]) -> Result<f64, StatsError> {
    let m = mean(sample)?;
    if exactly_zero(m) {
        return Err(StatsError::DegenerateSample);
    }
    Ok(std_dev(sample)? / m)
}

/// Minimum of a sample.
pub fn min(sample: &[f64]) -> Result<f64, StatsError> {
    check_len(sample, 1)?;
    Ok(sample.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Maximum of a sample — the *high watermark* in timing-analysis terms.
pub fn max(sample: &[f64]) -> Result<f64, StatsError> {
    check_len(sample, 1)?;
    Ok(sample.iter().copied().fold(f64::NEG_INFINITY, f64::max))
}

/// Linear-interpolation quantile (type 7, the R default) at probability `p`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] unless `0 ≤ p ≤ 1`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), proxima_stats::StatsError> {
/// let q = proxima_stats::descriptive::quantile(&[1.0, 2.0, 3.0, 4.0], 0.5)?;
/// assert_eq!(q, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn quantile(sample: &[f64], p: f64) -> Result<f64, StatsError> {
    check_len(sample, 1)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidArgument {
            what: "quantile probability must be in [0, 1]",
        });
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Ok(quantile_sorted(&sorted, p))
}

/// Type-7 quantile of an already ascending-sorted sample (no allocation).
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Median (the 0.5 quantile).
pub fn median(sample: &[f64]) -> Result<f64, StatsError> {
    quantile(sample, 0.5)
}

/// Sample skewness (adjusted Fisher–Pearson, as in common stats packages).
pub fn skewness(sample: &[f64]) -> Result<f64, StatsError> {
    check_len(sample, 3)?;
    let n = sample.len() as f64;
    let m = mean(sample)?;
    let sd = std_dev(sample)?;
    if exactly_zero(sd) {
        return Err(StatsError::DegenerateSample);
    }
    let m3: f64 = sample.iter().map(|x| ((x - m) / sd).powi(3)).sum::<f64>();
    Ok(m3 * n / ((n - 1.0) * (n - 2.0)))
}

/// Excess kurtosis (0 for a normal distribution), bias-adjusted.
pub fn excess_kurtosis(sample: &[f64]) -> Result<f64, StatsError> {
    check_len(sample, 4)?;
    let n = sample.len() as f64;
    let m = mean(sample)?;
    let sd = std_dev(sample)?;
    if exactly_zero(sd) {
        return Err(StatsError::DegenerateSample);
    }
    let m4: f64 = sample.iter().map(|x| ((x - m) / sd).powi(4)).sum::<f64>();
    let g2 = m4 * n * (n + 1.0) / ((n - 1.0) * (n - 2.0) * (n - 3.0));
    Ok(g2 - 3.0 * (n - 1.0) * (n - 1.0) / ((n - 2.0) * (n - 3.0)))
}

/// One-line summary of a sample, convenient for experiment reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum observation (high watermark).
    pub max: f64,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Errors
    ///
    /// Returns an error for samples with fewer than two observations or
    /// containing non-finite values.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), proxima_stats::StatsError> {
    /// let s = proxima_stats::descriptive::Summary::of(&[1.0, 2.0, 3.0])?;
    /// assert_eq!(s.max, 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn of(sample: &[f64]) -> Result<Self, StatsError> {
        check_len(sample, 2)?;
        Ok(Summary {
            n: sample.len(),
            mean: mean(sample)?,
            std_dev: std_dev(sample)?,
            min: min(sample)?,
            median: median(sample)?,
            max: max(sample)?,
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} med={:.3} max={:.3}",
            self.n, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

/// Probability-weighted moment `b_r` of an ascending-sorted sample.
///
/// `b_r = n⁻¹ Σ_i [(i−1)(i−2)…(i−r) / ((n−1)(n−2)…(n−r))] x_(i)` with 1-based
/// ranks — the unbiased estimator of Landwehr/Hosking used by the EVT fits.
pub fn pwm_sorted(sorted: &[f64], r: usize) -> f64 {
    let n = sorted.len();
    let mut acc = 0.0;
    for (idx, &x) in sorted.iter().enumerate() {
        let i = (idx + 1) as f64; // 1-based rank
        let mut w = 1.0;
        for k in 0..r {
            w *= (i - 1.0 - k as f64) / (n as f64 - 1.0 - k as f64);
        }
        acc += w * x;
    }
    acc / n as f64
}

/// Check a sample for finiteness (re-exported convenience).
pub fn validate(sample: &[f64]) -> Result<(), StatsError> {
    check_finite(sample)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: [f64; 8] = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];

    #[test]
    fn mean_and_variance_textbook() {
        assert_eq!(mean(&SAMPLE).unwrap(), 5.0);
        // Population variance of this classic sample is 4; unbiased is 32/7.
        let v = variance(&SAMPLE).unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_type7_matches_r() {
        // R: quantile(c(1,2,3,4), 0.25, type=7) == 1.75
        let q = quantile(&[1.0, 2.0, 3.0, 4.0], 0.25).unwrap();
        assert!((q - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_extremes_are_min_max() {
        assert_eq!(quantile(&SAMPLE, 0.0).unwrap(), 2.0);
        assert_eq!(quantile(&SAMPLE, 1.0).unwrap(), 9.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn skewness_of_symmetric_sample_is_zero() {
        let s = skewness(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn kurtosis_flat_sample_is_negative() {
        // A uniform-ish sample is platykurtic.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(excess_kurtosis(&xs).unwrap() < 0.0);
    }

    #[test]
    fn cv_scale_invariant() {
        let a: Vec<f64> = vec![10.0, 12.0, 14.0, 16.0];
        let b: Vec<f64> = a.iter().map(|x| x * 1000.0).collect();
        let ca = coefficient_of_variation(&a).unwrap();
        let cb = coefficient_of_variation(&b).unwrap();
        assert!((ca - cb).abs() < 1e-12);
    }

    #[test]
    fn errors_on_empty_and_nan() {
        assert!(mean(&[]).is_err());
        assert!(mean(&[f64::NAN]).is_err());
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn summary_fields_consistent() {
        let s = Summary::of(&SAMPLE).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.min <= s.median && s.median <= s.max);
        let line = s.to_string();
        assert!(line.contains("n=8"));
    }

    #[test]
    fn pwm_b0_is_mean() {
        let mut sorted = SAMPLE.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((pwm_sorted(&sorted, 0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pwm_b1_uniform_closed_form() {
        // For Uniform(0,1): b_r = E[X Fʳ] = 1/(r+2)·(r+1)/(r+1) = 1/(r+2)
        // over binomial weights — concretely b1 = E[X·F(X)] = ∫x² = 1/3.
        let n = 20_000;
        let sorted: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let b1 = pwm_sorted(&sorted, 1);
        assert!((b1 - 1.0 / 3.0).abs() < 1e-3, "b1={b1}");
        let b2 = pwm_sorted(&sorted, 2);
        assert!((b2 - 0.25).abs() < 1e-3, "b2={b2}"); // E[X F²] = 1/4
    }
}
