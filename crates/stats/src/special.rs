//! Special functions: log-gamma, regularized incomplete gamma, error
//! function and the inverse normal CDF.
//!
//! These are the numerical foundation of every distribution and hypothesis
//! test in the crate: the chi-squared survival function used by the
//! Ljung-Box test is a regularized incomplete gamma, the normal CDF is an
//! error function, and Gumbel/GEV moment fits need `Γ(1+k)`.

use crate::float::exactly_zero;

/// Euler–Mascheroni constant γ (mean of the standard Gumbel distribution).
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), accurate to about
/// 14 significant digits over the positive real axis.
///
/// # Examples
///
/// ```
/// use proxima_stats::special::ln_gamma;
///
/// assert!((ln_gamma(1.0)).abs() < 1e-12);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12); // Γ(5) = 4! = 24
/// ```
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    const SQRT_2PI: f64 = 2.506_628_274_631_000_7;
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i as f64) + 1.0);
    }
    let t = x + G + 0.5;
    (SQRT_2PI * acc).ln() + (x + 0.5) * t.ln() - t
}

/// The gamma function `Γ(x)` for `x > 0`.
///
/// # Examples
///
/// ```
/// use proxima_stats::special::gamma;
///
/// assert!((gamma(4.0) - 6.0).abs() < 1e-10);
/// ```
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`.
///
/// `P(a, ·)` is the CDF of the Gamma(a, 1) distribution; the chi-squared CDF
/// with `k` degrees of freedom is `P(k/2, x/2)`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction otherwise
/// (Numerical Recipes `gammp`).
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if exactly_zero(x) {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// Computed directly by continued fraction in the tail so that tiny survival
/// probabilities (the regime pWCET curves live in) keep full relative
/// accuracy.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if exactly_zero(x) {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued fraction representation.
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// The error function `erf(x)`.
///
/// Computed through the regularized incomplete gamma function,
/// `erf(x) = sign(x) · P(1/2, x²)`, giving near machine precision.
///
/// # Examples
///
/// ```
/// use proxima_stats::special::erf;
///
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if exactly_zero(x) {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Uses `Q(1/2, x²)` for positive `x` so the far tail keeps relative
/// accuracy (needed for rare-event probabilities).
pub fn erfc(x: f64) -> f64 {
    if x <= 0.0 {
        1.0 + gamma_p(0.5, x * x)
    } else {
        gamma_q(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function `Φ(z)`.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `1 − Φ(z)`, accurate in the far tail.
pub fn std_normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation refined with one Halley step against
/// [`std_normal_cdf`]; relative error below 1e-13 over `p ∈ (0, 1)`.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the accurate CDF.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            let rel = (ln_gamma(n as f64) - fact.ln()).abs() / fact.ln().abs().max(1.0);
            assert!(rel < 1e-12, "n={n} rel={rel}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.3, 0.7, 1.4, 2.9, 5.5, 11.2] {
            let lhs = gamma(x + 1.0);
            let rhs = x * gamma(x);
            assert!((lhs - rhs).abs() / rhs.abs() < 1e-11, "x={x}");
        }
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.5, 1.0, 2.5, 10.0] {
            for &x in &[0.1, 0.9, 1.0, 2.0, 5.0, 20.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a={a} x={x} s={s}");
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            let expected = 1.0 - f64::exp(-x);
            assert!((gamma_p(1.0, x) - expected).abs() < 1e-13, "x={x}");
        }
    }

    #[test]
    fn erf_known_values() {
        // Abramowitz & Stegun table values.
        assert!((erf(0.5) - 0.520_499_877_813_046_5).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-12);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-15, "odd function");
    }

    #[test]
    fn erfc_far_tail_relative_accuracy() {
        // erfc(5) ≈ 1.5374597944280347e-12; relative error must stay small.
        let v = erfc(5.0);
        let expected = 1.537_459_794_428_034_7e-12;
        assert!(((v - expected) / expected).abs() < 1e-8, "v={v}");
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &z in &[0.0, 0.5, 1.0, 2.3, 4.0] {
            let s = std_normal_cdf(z) + std_normal_cdf(-z);
            assert!((s - 1.0).abs() < 1e-14, "z={z}");
        }
    }

    #[test]
    fn normal_quantile_round_trip() {
        for &p in &[1e-10, 1e-6, 0.001, 0.025, 0.5, 0.975, 0.999, 1.0 - 1e-9] {
            let z = std_normal_quantile(p);
            let back = std_normal_cdf(z);
            assert!(
                (back - p).abs() < 1e-12 * (1.0 + 1.0 / p.min(1.0 - p)).min(1e4),
                "p={p} back={back}"
            );
        }
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!((std_normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-9);
        assert!((std_normal_quantile(0.5)).abs() < 1e-12);
        assert!((std_normal_quantile(0.841_344_746_068_542_9) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn quantile_domain_enforced() {
        let _ = std_normal_quantile(1.0);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_domain_enforced() {
        let _ = ln_gamma(0.0);
    }
}
