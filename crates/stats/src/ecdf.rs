//! Empirical cumulative distribution functions.

use crate::StatsError;

/// An empirical CDF built from a sample.
///
/// pWCET plots (Figure 2 of the paper) put the *empirical survival function*
/// `1 − F̂(x)` of the observed execution times on a log scale and overlay the
/// fitted EVT tail; [`Ecdf`] is that empirical side.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), proxima_stats::StatsError> {
/// use proxima_stats::ecdf::Ecdf;
///
/// let ecdf = Ecdf::new(&[1.0, 2.0, 2.0, 3.0])?;
/// assert_eq!(ecdf.eval(2.0), 0.75);
/// assert_eq!(ecdf.survival(2.0), 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build the ECDF of `sample`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] on an empty sample and
    /// [`StatsError::NonFiniteData`] if any value is NaN/infinite.
    pub fn new(sample: &[f64]) -> Result<Self, StatsError> {
        crate::error::check_len(sample, 1)?;
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Ok(Ecdf { sorted })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if the ECDF holds no observations (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F̂(x)`: fraction of observations `≤ x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.count_le(x) as f64 / self.sorted.len() as f64
    }

    /// `1 − F̂(x)`: fraction of observations strictly greater than `x`.
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }

    /// Empirical quantile: smallest observation `x` with `F̂(x) ≥ p`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < p ≤ 1`.
    pub fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(StatsError::InvalidArgument {
                what: "ECDF quantile probability must be in (0, 1]",
            });
        }
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        Ok(self.sorted[idx])
    }

    /// The sorted observations.
    pub fn as_sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// The survival-plot points `(x_(i), (n−i)/n)` for ascending `i = 1..n`,
    /// i.e. the staircase used as the empirical side of a pWCET plot.
    pub fn survival_points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (n - i - 1) as f64 / n as f64))
            .collect()
    }

    fn count_le(&self, x: f64) -> usize {
        // partition_point: first index with value > x.
        self.sorted.partition_point(|&v| v <= x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_staircase() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn survival_complements_eval() {
        let e = Ecdf::new(&[5.0, 1.0, 3.0]).unwrap();
        for &x in &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
            assert!((e.eval(x) + e.survival(x) - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn ties_counted_together() {
        let e = Ecdf::new(&[2.0, 2.0, 2.0, 5.0]).unwrap();
        assert_eq!(e.eval(2.0), 0.75);
    }

    #[test]
    fn quantile_inverts_eval() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        assert_eq!(e.quantile(0.2).unwrap(), 10.0);
        assert_eq!(e.quantile(0.21).unwrap(), 20.0);
        assert_eq!(e.quantile(1.0).unwrap(), 50.0);
        assert!(e.quantile(0.0).is_err());
        assert!(e.quantile(1.1).is_err());
    }

    #[test]
    fn survival_points_descend_to_zero() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0]).unwrap();
        let pts = e.survival_points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 2.0 / 3.0));
        assert_eq!(pts[2], (3.0, 0.0));
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Ecdf::new(&[]).is_err());
        assert!(Ecdf::new(&[f64::NAN]).is_err());
    }
}
