//! Criterion bench for experiment E2: the EVT fit behind Figure 2.
//!
//! Benchmarks block-maxima extraction, the Gumbel PWM and MLE fits, the
//! full `fit_tail` stage, and pWCET curve evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxima_bench::{tvca_campaign, BASE_SEED};
use proxima_mbpta::evt_fit::fit_tail;
use proxima_mbpta::{BlockSpec, MbptaConfig, Pipeline, Pwcet};
use proxima_sim::PlatformConfig;
use proxima_stats::evt::{block_maxima, fit_gumbel, fit_gumbel_pwm};
use proxima_workload::tvca::ControlMode;
use std::hint::black_box;

fn bench_fit(c: &mut Criterion) {
    let campaign = tvca_campaign(
        PlatformConfig::mbpta_compliant(),
        ControlMode::Nominal,
        3000,
        BASE_SEED,
    );
    let times = campaign.times().to_vec();
    let maxima = block_maxima(&times, 50).expect("maxima");

    let mut group = c.benchmark_group("e2_evt_fit");
    group.bench_function("block_maxima_3000/50", |b| {
        b.iter(|| block_maxima(black_box(&times), 50).expect("maxima"))
    });
    group.bench_function("gumbel_pwm_60", |b| {
        b.iter(|| fit_gumbel_pwm(black_box(&maxima)).expect("pwm"))
    });
    group.bench_function("gumbel_mle_60", |b| {
        b.iter(|| fit_gumbel(black_box(&maxima)).expect("mle"))
    });
    for block in [20usize, 50, 100] {
        group.bench_with_input(
            BenchmarkId::new("fit_tail_fixed", block),
            &block,
            |b, &bs| b.iter(|| fit_tail(black_box(&times), &BlockSpec::Fixed(bs)).expect("fit")),
        );
    }
    group.bench_function("full_pipeline_analyze", |b| {
        b.iter(|| {
            Pipeline::new(MbptaConfig::default())
                .analyze(black_box(&times))
                .expect("analysis")
        })
    });

    let fit = fit_tail(&times, &BlockSpec::Fixed(50)).expect("fit");
    let pwcet = Pwcet::new(fit.gumbel, fit.block_size);
    let probs: Vec<f64> = (3..=15).map(|e| 10f64.powi(-e)).collect();
    group.bench_function("pwcet_curve_13pts", |b| {
        b.iter(|| pwcet.curve(black_box(&probs)).expect("curve"))
    });
    group.finish();
}

criterion_group!(benches, bench_fit);
criterion_main!(benches);
