//! Criterion bench for ablation A1: placement-policy cost.
//!
//! Measures the per-access cost of each placement policy's index
//! computation path through a realistic cache access mix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxima_prng::Mwc64;
use proxima_sim::{Addr, CacheConfig, PlacementPolicy, ReplacementPolicy, SetAssocCache};
use std::hint::black_box;

fn bench_placement(c: &mut Criterion) {
    // A mixed working set: sequential sweeps + aliasing-prone strides.
    let addrs: Vec<Addr> = (0..4096u64)
        .map(|i| {
            if i % 3 == 0 {
                Addr::new(0x10_0000 + (i * 32) % 0x8000)
            } else {
                Addr::new(0x20_0000 + (i % 64) * 4096)
            }
        })
        .collect();

    let mut group = c.benchmark_group("a1_placement");
    group.throughput(criterion::Throughput::Elements(addrs.len() as u64));
    for placement in [
        PlacementPolicy::Modulo,
        PlacementPolicy::RandomModulo,
        PlacementPolicy::HashRandom,
    ] {
        group.bench_with_input(
            BenchmarkId::new("access_mix", placement.to_string()),
            &placement,
            |b, &p| {
                let cfg = CacheConfig::leon3_l1(p, ReplacementPolicy::Random);
                let mut cache = SetAssocCache::new(cfg);
                cache.reseed(42);
                let mut rng = Mwc64::new(42);
                b.iter(|| {
                    for a in &addrs {
                        black_box(cache.access(*a, false, &mut rng));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
