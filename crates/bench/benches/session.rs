//! Criterion bench: multi-channel session demux throughput vs channel
//! count.
//!
//! A fixed 24k-measurement tagged feed is demultiplexed to 1, 2, 4 or 8
//! streaming channels (round-robin interleave, so per-channel volume
//! shrinks as channels grow). Ingest cost is dominated by the per-sample
//! sketch/monitor updates, which are channel-count-independent; the bench
//! verifies the demux layer itself adds no super-linear overhead. A
//! second group measures `merge()` (per-channel finish, sharded over the
//! worker pool) at 1 and all-core `jobs`.
//!
//! The setup asserts the session acceptance criterion: per channel, the
//! merged verdict's pWCET equals a bare `StreamAnalyzer` run over that
//! channel's measurements alone, bit for bit.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use proxima_mbpta::session::Tagged;
use proxima_mbpta::MbptaConfig;
use proxima_stream::{SessionStreamExt, StreamAnalyzer, StreamConfig};
use std::hint::black_box;

const TOTAL: usize = 24_000;

/// Deterministic synthetic campaign (vendored StdRng).
fn campaign(n: usize, seed: u64) -> Vec<f64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
        .collect()
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        block_size: 50,
        refit_every_blocks: 5,
        bootstrap: None, // measure demux + refit, not the bootstrap
        ..StreamConfig::default()
    }
}

/// A round-robin tagged feed over `channels` synthetic channels.
fn tagged_feed(channels: usize) -> Vec<Tagged> {
    let per_channel = TOTAL / channels;
    let vectors: Vec<Vec<f64>> = (0..channels)
        .map(|c| campaign(per_channel, 1 + c as u64))
        .collect();
    let names: Vec<String> = (0..channels).map(|c| format!("chan{c}")).collect();
    let mut feed = Vec::with_capacity(TOTAL);
    for i in 0..per_channel {
        for (name, v) in names.iter().zip(&vectors) {
            feed.push(Tagged::new(name.as_str(), v[i]));
        }
    }
    feed
}

fn ingest_and_merge(feed: &[Tagged], jobs: usize) -> usize {
    let mut session = MbptaConfig::default()
        .session()
        .snapshot_every(0)
        .jobs(jobs)
        .build_stream_with(stream_config())
        .expect("config");
    for t in feed {
        session.push(t.clone()).expect("clean feed");
    }
    let merged = session.merge();
    assert!(merged.all_ok());
    merged.channels().len()
}

fn bench_session_demux(c: &mut Criterion) {
    // Acceptance guard: per-channel session verdicts equal bare
    // analyzers, bit for bit.
    {
        let feed = tagged_feed(4);
        let mut session = MbptaConfig::default()
            .session()
            .snapshot_every(0)
            .build_stream_with(stream_config())
            .expect("config");
        for t in &feed {
            session.push(t.clone()).expect("clean feed");
        }
        let merged = session.merge();
        for c in 0..4 {
            let times = campaign(TOTAL / 4, 1 + c as u64);
            let mut bare = StreamAnalyzer::new(stream_config()).expect("config");
            bare.extend(times).expect("ingest");
            let snap = bare.finish().expect("final");
            let verdict = merged
                .verdict(&format!("chan{c}"))
                .expect("channel")
                .as_ref()
                .expect("ok");
            assert_eq!(verdict.pwcet, snap.distribution, "chan{c} diverged");
        }
    }

    let mut group = c.benchmark_group("session_demux_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TOTAL as u64));
    for channels in [1usize, 2, 4, 8] {
        let feed = tagged_feed(channels);
        let name = format!("ingest_merge_{channels}ch");
        group.bench_function(&name, |b| b.iter(|| black_box(ingest_and_merge(&feed, 1))));
    }
    group.finish();

    // Merge scaling: ingest ONCE per jobs setting, then time merge alone
    // on clones of the fully ingested session — ingest is jobs-
    // independent and would otherwise drown the comparison.
    let mut group = c.benchmark_group("session_merge_jobs");
    group.sample_size(10);
    let feed = tagged_feed(8);
    for jobs in [1usize, 0] {
        let mut session = MbptaConfig::default()
            .session()
            .snapshot_every(0)
            .jobs(jobs)
            .build_stream_with(stream_config())
            .expect("config");
        for t in &feed {
            session.push(t.clone()).expect("clean feed");
        }
        if jobs == 1 {
            // The vendored criterion has no iter_batched, so the timed
            // region is clone+merge; this baseline isolates the clone
            // cost so merge scaling is readable by subtraction.
            group.bench_function("clone_baseline", |b| {
                b.iter(|| black_box(session.clone()).channel_count())
            });
        }
        group.bench_function(
            if jobs == 1 {
                "merge_1job"
            } else {
                "merge_allcores"
            },
            |b| {
                b.iter(|| {
                    let merged = black_box(session.clone().merge());
                    assert!(merged.all_ok());
                    merged.channels().len()
                })
            },
        );
    }
    group.finish();
}

/// Batched vs single-measurement session feeds on a channel-major feed
/// (all of channel 0, then channel 1, …): the shape where the CLI's
/// run-buffering actually forms large batches. Bit-identity of the bulk
/// path is asserted via session checkpoint bytes before timing.
fn bench_session_batch_ingest(c: &mut Criterion) {
    const CHUNK: usize = 4096;
    const CHANNELS: usize = 4;
    let per_channel = TOTAL / CHANNELS;
    let feeds: Vec<(String, Vec<f64>)> = (0..CHANNELS)
        .map(|ch| (format!("chan{ch}"), campaign(per_channel, 1 + ch as u64)))
        .collect();

    let build = || {
        MbptaConfig::default()
            .session()
            .snapshot_every(0)
            .build_stream_with(stream_config())
            .expect("config")
    };

    // Identity guard: batched and itemized channel-major feeds produce
    // the same checkpoint, byte for byte.
    let mut itemized = build();
    for (name, v) in &feeds {
        for &x in v {
            itemized.push(Tagged::new(name.as_str(), x)).expect("feed");
        }
    }
    let mut batched = build();
    for (name, v) in &feeds {
        for chunk in v.chunks(CHUNK) {
            batched.push_batch(name.as_str(), chunk).expect("feed");
        }
    }
    assert_eq!(
        batched.checkpoint().expect("checkpoint"),
        itemized.checkpoint().expect("checkpoint"),
        "batched session feed diverged from itemized"
    );

    let mut group = c.benchmark_group("session_ingest_batch_vs_single");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TOTAL as u64));
    group.bench_function("single_push_24k", |b| {
        b.iter(|| {
            let mut session = build();
            for (name, v) in &feeds {
                for &x in v {
                    session.push(Tagged::new(name.as_str(), x)).expect("feed");
                }
            }
            black_box(session.len())
        })
    });
    group.bench_function("batch_push_24k", |b| {
        b.iter(|| {
            let mut session = build();
            for (name, v) in &feeds {
                for chunk in v.chunks(CHUNK) {
                    session.push_batch(name.as_str(), chunk).expect("feed");
                }
            }
            black_box(session.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_session_demux, bench_session_batch_ingest);
criterion_main!(benches);
