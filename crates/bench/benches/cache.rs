//! Criterion micro-benches of the cache/TLB substrate: hit path, miss +
//! replacement path, flush, and TLB translation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxima_prng::Mwc64;
use proxima_sim::{
    Addr, CacheConfig, PlacementPolicy, ReplacementPolicy, SetAssocCache, Tlb, TlbConfig,
};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_substrate");

    group.bench_function("hit_path", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::default());
        let mut rng = Mwc64::new(0);
        cache.access(Addr::new(0x1000), false, &mut rng);
        b.iter(|| black_box(cache.access(Addr::new(0x1000), false, &mut rng)))
    });

    for repl in [ReplacementPolicy::Lru, ReplacementPolicy::Random] {
        group.bench_with_input(
            BenchmarkId::new("thrash_miss_path", format!("{repl}")),
            &repl,
            |b, &r| {
                let cfg = CacheConfig::leon3_l1(PlacementPolicy::Modulo, r);
                let mut cache = SetAssocCache::new(cfg);
                let mut rng = Mwc64::new(0);
                // 8 aliasing lines guarantee an eviction per access.
                let lines: Vec<Addr> = (0..8).map(|i| Addr::new(0x100 + i * 4096)).collect();
                let mut i = 0;
                b.iter(|| {
                    i = (i + 1) % lines.len();
                    black_box(cache.access(lines[i], false, &mut rng))
                })
            },
        );
    }

    group.bench_function("flush_16kb", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::default());
        b.iter(|| cache.flush())
    });

    group.bench_function("tlb_hit", |b| {
        let mut tlb = Tlb::new(TlbConfig::default());
        let mut rng = Mwc64::new(0);
        tlb.access(Addr::new(0x4000), &mut rng);
        b.iter(|| black_box(tlb.access(Addr::new(0x4000), &mut rng)))
    });

    group.bench_function("tlb_miss_evict", |b| {
        let mut tlb = Tlb::new(TlbConfig::default());
        let mut rng = Mwc64::new(0);
        let mut page = 0u64;
        b.iter(|| {
            page = page.wrapping_add(1);
            black_box(tlb.access(Addr::new(page * 4096), &mut rng))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
