//! Criterion bench for experiment E4: per-workload simulated cycles on
//! DET vs RAND (the average-performance table over the benchmark suite).
//!
//! Criterion measures wall-clock per simulated run; the *simulated cycle
//! counts* behind E4's table come from `exp_avg`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxima_sim::{Platform, PlatformConfig};
use proxima_workload::bench_suite::Benchmark;
use std::hint::black_box;

fn bench_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_bench_suite");
    for bench in Benchmark::all() {
        let trace = bench.trace();
        group.throughput(criterion::Throughput::Elements(trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("rand", bench.name()),
            &trace,
            |b, trace| {
                let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(platform.run(black_box(trace), seed).cycles)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("det", bench.name()), &trace, |b, trace| {
            let mut platform = Platform::new(PlatformConfig::deterministic());
            b.iter(|| black_box(platform.run(black_box(trace), 0).cycles))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
