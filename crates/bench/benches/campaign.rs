//! Criterion bench for the sharded parallel campaign engine.
//!
//! Runs the same 1000-run TVCA measurement campaign through
//! `CampaignRunner` at increasing thread counts. The measurement vector is
//! bit-identical at every job count (asserted below), so this measures pure
//! scaling: near-linear speedup is expected up to the physical core count,
//! with ≥ 3× at 8 threads the acceptance bar.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxima_mbpta::CampaignRunner;
use proxima_sim::PlatformConfig;
use proxima_workload::tvca::{ControlMode, Scale, Tvca, TvcaConfig};
use std::hint::black_box;

const RUNS: usize = 1000;
const MASTER_SEED: u64 = 10_000_000;

fn bench_campaign_scaling(c: &mut Criterion) {
    let tvca = Tvca::new(TvcaConfig {
        scale: Scale::Small,
        layout_seed: 0,
    });
    let trace = tvca.trace(ControlMode::Nominal);
    let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant());

    // Guard the bench's premise: every job count measures the same vector.
    let reference = runner
        .clone()
        .with_jobs(1)
        .run(&trace, RUNS, MASTER_SEED)
        .expect("campaign");
    for jobs in [2, 4, 8] {
        let parallel = runner
            .clone()
            .with_jobs(jobs)
            .run(&trace, RUNS, MASTER_SEED)
            .expect("campaign");
        assert_eq!(reference.times(), parallel.times(), "jobs={jobs}");
    }

    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(RUNS as u64));
    for jobs in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("tvca_1000_runs", jobs),
            &jobs,
            |b, &jobs| {
                let runner = runner.clone().with_jobs(jobs);
                b.iter(|| black_box(runner.run(&trace, RUNS, MASTER_SEED).expect("campaign")))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_campaign_scaling);
criterion_main!(benches);
