//! Criterion bench: streaming vs batch MBPTA on the same campaign.
//!
//! The streaming analyzer pays for its bounded memory with per-sample
//! sketch/monitor updates and periodic refits; this bench quantifies that
//! overhead against a single batch `analyze()` over the full vector, and
//! isolates the pure ingest cost (sketch + monitor + block accumulation,
//! no refits) as a third series. The setup asserts the acceptance
//! criterion of the streaming subsystem: on a 10k-sample trace the final
//! streamed pWCET at p = 1e-12 is within 1% of the batch result at the
//! same block size.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use proxima_mbpta::{BlockSpec, MbptaConfig, Pipeline};
use proxima_stream::{StreamAnalyzer, StreamConfig};
use std::hint::black_box;

const N: usize = 10_000;
const BLOCK: usize = 50;

/// A synthetic i.i.d. campaign: base latency plus summed uniform jitter,
/// deterministic via the vendored StdRng.
fn campaign(n: usize, seed: u64) -> Vec<f64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
        .collect()
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        block_size: BLOCK,
        refit_every_blocks: 5,
        bootstrap: None, // measure the refit loop, not the bootstrap
        ..StreamConfig::default()
    }
}

fn batch_config() -> MbptaConfig {
    MbptaConfig {
        block: BlockSpec::Fixed(BLOCK),
        ..MbptaConfig::default()
    }
}

fn bench_streaming_vs_batch(c: &mut Criterion) {
    let times = campaign(N, 3);

    // Acceptance guard: streaming and batch agree at the same block size.
    let batch_budget = Pipeline::new(batch_config())
        .analyze(&times)
        .expect("batch analysis")
        .budget_for(1e-12)
        .expect("budget");
    let mut analyzer = StreamAnalyzer::new(stream_config()).expect("config");
    analyzer.extend(times.iter().copied()).expect("ingest");
    let streamed = analyzer.finish().expect("final snapshot");
    let rel = (streamed.pwcet / batch_budget - 1.0).abs();
    assert!(
        rel < 0.01,
        "streamed {} vs batch {batch_budget}: rel err {rel}",
        streamed.pwcet
    );

    let mut group = c.benchmark_group("streaming_vs_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("batch_analyze_10k", |b| {
        b.iter(|| {
            black_box(
                Pipeline::new(batch_config())
                    .analyze(&times)
                    .expect("batch"),
            )
        })
    });
    group.bench_function("stream_ingest_refit_10k", |b| {
        b.iter(|| {
            let mut a = StreamAnalyzer::new(stream_config()).expect("config");
            a.extend(times.iter().copied()).expect("ingest");
            black_box(a.finish().expect("final"))
        })
    });
    group.bench_function("stream_ingest_only_10k", |b| {
        // Refits disabled by an unreachable cadence: pure bounded-memory
        // ingest cost (sketch + monitor + block maxima).
        let config = StreamConfig {
            refit_every_blocks: usize::MAX,
            ..stream_config()
        };
        b.iter(|| {
            let mut a = StreamAnalyzer::new(config.clone()).expect("config");
            a.extend(times.iter().copied()).expect("ingest");
            black_box(a.len())
        })
    });
    group.finish();
}

/// Batched vs single-measurement ingest on the same campaign: the bulk
/// path must be bit-identical (asserted via checkpoint bytes) while
/// amortizing sketch compaction and monitor maintenance over each chunk.
/// The machine-independent gate on this claim lives in the
/// `ingest_report` bin; here criterion reads the wall-clock side.
fn bench_batch_vs_single_ingest(c: &mut Criterion) {
    const CHUNK: usize = 4096;
    let times = campaign(N, 3);

    // Identity guard: same checkpoint bytes, so same sketch tuples,
    // monitor window, maxima and counters.
    let mut itemized = StreamAnalyzer::new(stream_config()).expect("config");
    itemized.extend(times.iter().copied()).expect("ingest");
    let mut batched = StreamAnalyzer::new(stream_config()).expect("config");
    for chunk in times.chunks(CHUNK) {
        batched.push_batch(chunk).expect("ingest");
    }
    assert_eq!(
        proxima_stream::persist::save_analyzer(&batched),
        proxima_stream::persist::save_analyzer(&itemized),
        "batched ingest diverged from itemized"
    );

    let mut group = c.benchmark_group("ingest_batch_vs_single");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("single_push_10k", |b| {
        b.iter(|| {
            let mut a = StreamAnalyzer::new(stream_config()).expect("config");
            for &x in &times {
                a.push(x).expect("ingest");
            }
            black_box(a.len())
        })
    });
    group.bench_function("batch_push_10k", |b| {
        b.iter(|| {
            let mut a = StreamAnalyzer::new(stream_config()).expect("config");
            for chunk in times.chunks(CHUNK) {
                a.push_batch(chunk).expect("ingest");
            }
            black_box(a.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_streaming_vs_batch,
    bench_batch_vs_single_ingest
);
criterion_main!(benches);
