//! Criterion bench for experiment E1: the i.i.d. validation gate.
//!
//! Benchmarks the Ljung-Box and two-sample KS tests at the paper's
//! campaign size (3,000 observations) and the full gate end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxima_bench::{tvca_campaign, BASE_SEED};
use proxima_mbpta::iid::validate;
use proxima_sim::PlatformConfig;
use proxima_stats::tests::{ks_two_sample, ljung_box};
use proxima_workload::tvca::ControlMode;
use std::hint::black_box;

fn bench_iid(c: &mut Criterion) {
    // One shared campaign: the bench measures the statistics, not the sim.
    let campaign = tvca_campaign(
        PlatformConfig::mbpta_compliant(),
        ControlMode::Nominal,
        3000,
        BASE_SEED,
    );
    let times = campaign.times().to_vec();

    let mut group = c.benchmark_group("e1_iid_gate");
    group.bench_function("ljung_box_3000x20", |b| {
        b.iter(|| ljung_box(black_box(&times), 20).expect("lb"))
    });
    group.bench_function("ks_two_sample_1500v1500", |b| {
        let (first, second) = times.split_at(times.len() / 2);
        b.iter(|| ks_two_sample(black_box(first), black_box(second)).expect("ks"))
    });
    group.bench_function("full_gate", |b| {
        b.iter(|| validate(black_box(&times), 0.05, None).expect("gate"))
    });
    for n in [500usize, 1000, 3000] {
        group.bench_with_input(BenchmarkId::new("gate_by_n", n), &n, |b, &n| {
            b.iter(|| validate(black_box(&times[..n]), 0.05, None).expect("gate"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iid);
criterion_main!(benches);
