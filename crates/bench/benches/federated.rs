//! Criterion bench: federated sharded streaming — merge cost vs shard
//! count, and sharded vs single-stream ingest.
//!
//! A fixed 40k-sample synthetic campaign is (a) streamed through one
//! `StreamAnalyzer` and (b) routed to 2/4/8 federated shards and folded.
//! The fold is a per-finish cost — sketch merge + maxima concatenation +
//! window fold per shard — so `merged()` alone is timed against the
//! shard count to show the coordinator's cost grows with shards, not
//! with the stream length.
//!
//! The setup asserts the federated acceptance criterion: the folded
//! pWCET equals the single-stream pWCET **bit for bit** at every shard
//! count (shard boundaries are block-aligned, so the folded maxima
//! buffer is the single-stream buffer).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use proxima_stream::{FederatedAnalyzer, FederatedConfig, StreamAnalyzer, StreamConfig};
use std::hint::black_box;

const TOTAL: usize = 40_000;

/// Deterministic synthetic campaign (vendored StdRng).
fn campaign(n: usize, seed: u64) -> Vec<f64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
        .collect()
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        block_size: 50,
        refit_every_blocks: 5,
        bootstrap: None, // measure ingest + fold, not the bootstrap
        ..StreamConfig::default()
    }
}

fn sharded(data: &[f64], shards: usize) -> FederatedAnalyzer {
    let config = FederatedConfig::new(stream_config(), shards).balanced_for(data.len());
    let mut fed = FederatedAnalyzer::new(config).expect("config");
    for &x in data {
        fed.push(x).expect("clean stream");
    }
    fed
}

fn bench_federated(c: &mut Criterion) {
    let data = campaign(TOTAL, 1);

    // Acceptance guard: the folded pWCET is bit-identical to the
    // single-stream pWCET at every shard count.
    let single_budget = {
        let mut single = StreamAnalyzer::new(stream_config()).expect("config");
        single.extend(data.iter().copied()).expect("ingest");
        single.finish().expect("final").pwcet
    };
    for shards in [1usize, 2, 4, 8] {
        let mut fed = sharded(&data, shards);
        assert_eq!(
            fed.finish().expect("fold").pwcet,
            single_budget,
            "shards={shards} diverged from the single stream"
        );
    }

    // Ingest throughput: single stream vs federated routing (the demux
    // adds one division per sample).
    let mut group = c.benchmark_group("federated_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TOTAL as u64));
    group.bench_function("single_stream", |b| {
        b.iter(|| {
            let mut analyzer = StreamAnalyzer::new(stream_config()).expect("config");
            analyzer.extend(data.iter().copied()).expect("ingest");
            black_box(analyzer.blocks())
        })
    });
    for shards in [2usize, 8] {
        group.bench_function(&format!("sharded_{shards}"), |b| {
            b.iter(|| black_box(sharded(&data, shards)).len())
        });
    }
    group.finish();

    // Fold cost vs shard count: the coordinator's per-campaign cost.
    let mut group = c.benchmark_group("federated_merge");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let fed = sharded(&data, shards);
        group.bench_function(&format!("merge_{shards}shards"), |b| {
            b.iter(|| {
                let merged = fed.merged().expect("aligned shards");
                black_box(merged.blocks())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_federated);
criterion_main!(benches);
