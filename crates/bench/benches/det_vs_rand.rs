//! Criterion bench for experiment E3: simulated-run cost on the DET and
//! RAND platform personalities (Figure 3's measurement side).
//!
//! The RAND/DET ratio here is the simulation-cost counterpart of the
//! average-performance bars: if the randomized platform model were much
//! slower to simulate, campaigns would be impractical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxima_sim::{Platform, PlatformConfig};
use proxima_workload::tvca::{ControlMode, Tvca, TvcaConfig};
use std::hint::black_box;

fn bench_platforms(c: &mut Criterion) {
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(ControlMode::Nominal);

    let mut group = c.benchmark_group("e3_platform_run");
    group.throughput(criterion::Throughput::Elements(trace.len() as u64));
    for (name, config) in [
        ("det", PlatformConfig::deterministic()),
        ("rand", PlatformConfig::mbpta_compliant()),
    ] {
        group.bench_with_input(BenchmarkId::new("tvca_run", name), &config, |b, cfg| {
            let mut platform = Platform::new(cfg.clone());
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(platform.run(black_box(&trace), seed).cycles)
            })
        });
    }
    for mode in [
        ControlMode::Nominal,
        ControlMode::SaturatedX,
        ControlMode::FaultRecovery,
    ] {
        let t = tvca.trace(mode);
        group.bench_with_input(
            BenchmarkId::new("rand_by_path", mode.to_string()),
            &t,
            |b, t| {
                let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(platform.run(black_box(t), seed).cycles)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_platforms);
criterion_main!(benches);
