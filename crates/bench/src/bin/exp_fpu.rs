//! **A4 — FPU latency mode ablation**: why FDIV/FSQRT are forced to their
//! worst-case latency during the analysis phase.
//!
//! With a value-dependent FPU, a campaign whose inputs happen to exercise
//! fast operands *under-estimates* operation-time behaviour on slower
//! operands — a silent unsoundness. Forcing worst-case latency at analysis
//! makes the analysis-time FPU impact a guaranteed upper bound.
//!
//! The TVCA's nominal path has too few divides for the effect to beat the
//! cache jitter, so this experiment uses a guidance kernel that is
//! FDIV/FSQRT-heavy (the workload class the paper's FPU change exists
//! for), measured three ways:
//!
//! 1. analysis campaign, FPU **forced-worst** (the paper's platform);
//! 2. analysis campaign, FPU **variable**, with the benign operand values
//!    the test inputs happen to produce;
//! 3. "operation": the same kernel on worst-class operands.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_fpu
//! ```

use proxima_bench::{fmt_cycles, trace_campaign, BASE_SEED};
use proxima_mbpta::{MbptaConfig, Pipeline};
use proxima_sim::{FpuLatencyMode, Inst, PlatformConfig, ValueClass};
use proxima_workload::kernels;
use proxima_workload::trace::{DataObject, TraceBuilder};

/// A guidance kernel: repeated vector normalizations + calibration
/// interpolation, all FDIV/FSQRT-heavy, with cache pressure from a table
/// spread over several alignment windows.
fn guidance_trace(class: ValueClass) -> Vec<Inst> {
    let mut b = TraceBuilder::new(0x4200_0000);
    let vectors = DataObject::new(0x7100_0000, 256, 4);
    let out = DataObject::new(0x7100_2000, 256, 4);
    let table = DataObject::new(0x7100_4000, 1024, 4);
    let queries = DataObject::new(0x7100_9000, 64, 4);
    let results = DataObject::new(0x7100_B000, 64, 4);
    // Navigation state across a few alignment windows: enough placement
    // jitter for the i.i.d. gate, small enough that the FPU term dominates.
    let state: Vec<DataObject> = (0..6)
        .map(|i| DataObject::new(0x7200_0000 + i * 0x1000, 256, 4))
        .collect();
    b.loop_n(16, |b, _| {
        for s in &state {
            b.stream_load(s);
        }
        kernels::vec_normalize(b, &vectors, &out, class);
        kernels::table_interp(b, &table, &queries, &results, class);
    });
    b.finish()
}

fn main() {
    println!("=== A4: FPU forced-worst vs variable latency at analysis ===\n");

    let runs = 1000;
    // Analysis campaigns: benign (fast-class) operands, both FPU modes.
    let analysis_trace = guidance_trace(ValueClass::Fast);
    let mut forced_cfg = PlatformConfig::mbpta_compliant();
    forced_cfg.fpu_mode = FpuLatencyMode::ForcedWorst;
    let mut variable_cfg = PlatformConfig::mbpta_compliant();
    variable_cfg.fpu_mode = FpuLatencyMode::Variable;

    let forced = trace_campaign(forced_cfg, &analysis_trace, runs, BASE_SEED);
    let variable = trace_campaign(variable_cfg.clone(), &analysis_trace, runs, BASE_SEED);

    // Operation: worst-class operands on the deployed (variable) FPU.
    let operation_trace = guidance_trace(ValueClass::Worst);
    let operation = trace_campaign(variable_cfg, &operation_trace, runs, BASE_SEED + 999);

    let forced_report = Pipeline::new(MbptaConfig::default())
        .analyze(forced.times())
        .expect("MBPTA");
    let variable_report = Pipeline::new(MbptaConfig::default())
        .analyze(variable.times())
        .expect("MBPTA");
    // The distribution operation actually has (worst-class operands).
    let operation_report = Pipeline::new(MbptaConfig::default())
        .analyze(operation.times())
        .expect("MBPTA");

    println!(
        "{:<24}{:>16}{:>16}{:>16}",
        "exceedance curve", "hwm", "pWCET@1e-6", "pWCET@1e-12"
    );
    for (label, report) in [
        ("analysis forced-worst", &forced_report),
        ("analysis variable", &variable_report),
        ("operation (truth)", &operation_report),
    ] {
        println!(
            "{:<24}{:>16}{:>16}{:>16}",
            label,
            fmt_cycles(report.high_watermark()),
            fmt_cycles(report.budget_for(1e-6).expect("budget")),
            fmt_cycles(report.budget_for(1e-12).expect("budget")),
        );
    }

    let p = 1e-12;
    let forced_budget = forced_report.budget_for(p).expect("budget");
    let variable_budget = variable_report.budget_for(p).expect("budget");
    let op_budget = operation_report.budget_for(p).expect("budget");

    println!("\nsoundness check at 1e-12 (vs the operation curve):");
    println!(
        "  forced-worst analysis covers operation   : {} ({} vs {})",
        forced_budget >= op_budget * 0.99,
        fmt_cycles(forced_budget),
        fmt_cycles(op_budget)
    );
    println!(
        "  variable-latency analysis covers it      : {} ({} vs {})  <- the silent unsoundness",
        variable_budget >= op_budget * 0.99,
        fmt_cycles(variable_budget),
        fmt_cycles(op_budget)
    );
    println!("\nthe paper's FPU change exists exactly for this: value-dependent");
    println!("latencies shift the whole operation-time distribution upward, and no");
    println!("number of analysis runs on benign operands can observe that shift —");
    println!("the analysis-phase hardware must pin the latency to its maximum.");
}
