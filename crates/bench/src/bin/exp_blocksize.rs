//! **A2 — Block-size ablation**: sensitivity of the Gumbel fit and the
//! pWCET estimate to the block-maxima block size, plus the POT cross-check.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_blocksize
//! ```

use proxima_bench::{fmt_cycles, tvca_campaign, BASE_SEED, PAPER_RUNS};
use proxima_mbpta::evt_fit::fit_tail;
use proxima_mbpta::{BlockSpec, Pwcet};
use proxima_sim::PlatformConfig;
use proxima_stats::dist::ContinuousDistribution;
use proxima_workload::tvca::ControlMode;

fn main() {
    println!("=== A2: block-size sweep for the EVT fit (TVCA, RAND) ===\n");
    let campaign = tvca_campaign(
        PlatformConfig::mbpta_compliant(),
        ControlMode::Nominal,
        PAPER_RUNS,
        BASE_SEED,
    );

    println!(
        "{:<10}{:>10}{:>14}{:>12}{:>12}{:>16}{:>16}",
        "block", "maxima", "gumbel mu", "beta", "KS-GoF p", "pWCET@1e-9", "pWCET@1e-15"
    );
    for block in [10usize, 20, 25, 50, 100, 150] {
        match fit_tail(campaign.times(), &BlockSpec::Fixed(block)) {
            Ok(fit) => {
                let pwcet = Pwcet::new(fit.gumbel, fit.block_size);
                println!(
                    "{:<10}{:>10}{:>14}{:>12.2}{:>12.3}{:>16}{:>16}",
                    block,
                    fit.n_maxima,
                    fmt_cycles(fit.gumbel.mu()),
                    fit.gumbel.beta(),
                    fit.gof.ks.p_value,
                    fmt_cycles(pwcet.budget_for(1e-9).expect("budget")),
                    fmt_cycles(pwcet.budget_for(1e-15).expect("budget")),
                );
            }
            Err(e) => println!("{block:<10} fit failed: {e}"),
        }
    }

    // POT cross-check at the default settings.
    let fit = fit_tail(campaign.times(), &BlockSpec::default()).expect("fit");
    if let Some(gpd) = fit.pot_cross_check {
        let bm_q = fit.gumbel.exceedance_quantile(1e-9 * fit.block_size as f64);
        let pot_q = gpd.exceedance_quantile(1e-8); // per-exceedance prob, same scale region
        println!(
            "\nPOT cross-check: GPD xi={:+.3} over threshold {} (block-maxima deep quantile {:?}, POT {:?})",
            gpd.xi(),
            fmt_cycles(gpd.threshold()),
            bm_q.map(fmt_cycles),
            pot_q.map(fmt_cycles),
        );
    }
    println!("\nexpected shape: estimates stabilise once blocks are large enough");
    println!("(>= 25) and shrinking maxima counts only widen the fit noise.");
}
