//! **A3 — Convergence**: why 3,000 runs suffice.
//!
//! Tracks the pWCET estimate at the 10⁻¹² cutoff across growing prefixes
//! of the campaign; the paper's protocol stops collecting once the MBPTA
//! convergence criterion is met (satisfied at 3,000 runs in the paper).
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_convergence
//! ```

use proxima_bench::{fmt_cycles, tvca_campaign, BASE_SEED};
use proxima_mbpta::convergence::{check_convergence, ConvergenceConfig};
use proxima_sim::PlatformConfig;
use proxima_workload::tvca::ControlMode;

fn main() {
    println!("=== A3: campaign-size convergence of the pWCET estimate ===\n");
    let campaign = tvca_campaign(
        PlatformConfig::mbpta_compliant(),
        ControlMode::Nominal,
        4000,
        BASE_SEED,
    );
    let report = check_convergence(&campaign, &ConvergenceConfig::default()).expect("convergence");

    println!("{:>8}{:>18}{:>12}", "runs", "pWCET@1e-12", "delta");
    let mut prev: Option<f64> = None;
    for point in &report.trajectory {
        let delta = prev
            .map(|p| format!("{:+.3}%", 100.0 * (point.estimate - p) / p))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>8}{:>18}{:>12}",
            point.runs,
            fmt_cycles(point.estimate),
            delta
        );
        prev = Some(point.estimate);
    }
    match report.converged_at {
        Some(runs) => println!(
            "\ncriterion met at {runs} runs (3 consecutive checkpoints within 1%)\n\
             paper: convergence satisfied by 3,000 runs"
        ),
        None => println!("\ncriterion NOT met within the campaign — collect more runs"),
    }
}
