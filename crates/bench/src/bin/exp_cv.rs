//! **A7 — MBPTA-CV vs block maxima**: the same campaign analysed with the
//! DATE 2017 block-maxima process and with the successor MBPTA-CV method
//! (residual coefficient of variation + exponential tail), plus bootstrap
//! confidence intervals on the block-maxima estimate.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_cv
//! ```

use proxima_bench::{fmt_cycles, tvca_campaign, BASE_SEED, PAPER_RUNS};
use proxima_mbpta::confidence::budget_interval;
use proxima_mbpta::cv::analyze_cv;
use proxima_mbpta::{MbptaConfig, Pipeline};
use proxima_sim::PlatformConfig;
use proxima_workload::tvca::ControlMode;

fn main() {
    println!("=== A7: block-maxima MBPTA vs MBPTA-CV on the same campaign ===\n");
    let campaign = tvca_campaign(
        PlatformConfig::mbpta_compliant(),
        ControlMode::Nominal,
        PAPER_RUNS,
        BASE_SEED,
    );
    let config = MbptaConfig::default();
    let bm = Pipeline::new(config.clone())
        .analyze(campaign.times())
        .expect("block-maxima analysis");
    let cv = analyze_cv(campaign.times(), &config).expect("cv analysis");

    println!(
        "MBPTA-CV threshold selection: u={} keeping {} exceedances (residual CV {:.3})",
        fmt_cycles(cv.fit.threshold),
        cv.fit.tail_size,
        cv.fit.cv
    );
    println!(
        "block-maxima fit: Gumbel(mu={}, beta={:.1}) on block {}\n",
        fmt_cycles(bm.fit.gumbel.mu()),
        bm.fit.gumbel.beta(),
        bm.fit.block_size
    );

    println!(
        "{:<12}{:>16}{:>16}{:>10}",
        "cutoff", "block-maxima", "mbpta-cv", "cv/bm"
    );
    for exp in [6i32, 9, 12, 15] {
        let p = 10f64.powi(-exp);
        let b_bm = bm.budget_for(p).expect("bm budget");
        let b_cv = cv.budget_for(p).expect("cv budget");
        println!(
            "{:<12}{:>16}{:>16}{:>10.3}",
            format!("1e-{exp}"),
            fmt_cycles(b_bm),
            fmt_cycles(b_cv),
            b_cv / b_bm
        );
    }

    let ci =
        budget_interval(campaign.times(), &bm, 1e-12, 0.95, 500, 42).expect("bootstrap interval");
    println!(
        "\n95% bootstrap CI for the block-maxima pWCET@1e-12: [{}, {}] ({}% relative width, {} resamples)",
        fmt_cycles(ci.lower),
        fmt_cycles(ci.upper),
        (ci.relative_width() * 100.0).round(),
        ci.resamples
    );
    let b_cv12 = cv.budget_for(1e-12).expect("cv budget");
    println!(
        "MBPTA-CV estimate {} the block-maxima CI — the two methods {}",
        if b_cv12 >= ci.lower && b_cv12 <= ci.upper {
            "falls inside"
        } else {
            "falls outside"
        },
        if b_cv12 >= ci.lower && b_cv12 <= ci.upper {
            "corroborate each other"
        } else {
            "disagree: investigate the tail"
        },
    );
}
