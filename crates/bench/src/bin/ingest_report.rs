//! **Ingest hot-path report**: batched vs itemized ingestion cost,
//! measured by machine-independent counters — emits `BENCH_ingest.json`.
//!
//! Wall-clock throughput on a shared 1-core CI runner is noise, so the
//! regression gate is the quantile sketch's tuple-maintenance counter
//! (`QuantileSketch::maintenance_ops`): tuple slots shifted, merged or
//! sorted per ingested measurement. Batched ingest must do at least
//! [`MIN_SPEEDUP`]× less maintenance work per measurement than itemized
//! ingest, at the sketch level and through the full stream analyzer.
//! Bit-identity of the batched state is asserted before anything is
//! reported — a fast batch that computes a different sketch is a bug,
//! not a win. Wall-clock ops/sec are included in the JSON for local
//! reading but never gated on.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin ingest_report [-- <out.json>]
//! ```

use std::time::Instant;

use proxima_prng::{RandomSource, SplitMix64};
use proxima_stream::persist::save_analyzer;
use proxima_stream::{QuantileSketch, StreamAnalyzer, StreamConfig};

/// Measurements in the synthetic campaign.
const N: usize = 100_000;
/// Measurements per `push_batch` call (the CLI's feed chunk size).
const CHUNK: usize = 4096;
/// Rank-error bound of the gated sketch (the analyzer default).
const EPSILON: f64 = 0.001;
/// The gate: itemized maintenance ops per measurement must be at least
/// this multiple of the batched ops per measurement.
const MIN_SPEEDUP: f64 = 5.0;

/// Deterministic synthetic campaign: base latency plus summed uniform
/// jitter (SplitMix64 — the bench crate's bins avoid the dev-only rand).
fn campaign(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    let mut uniform = || (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    (0..n)
        .map(|_| 1e5 + (0..8).map(|_| uniform()).sum::<f64>() * 100.0)
        .collect()
}

/// One measured ingest run: the counter delta, final tuple count, and
/// wall time.
struct IngestRun {
    maintenance_ops: u64,
    tuples: usize,
    elapsed_s: f64,
}

impl IngestRun {
    fn ops_per_measurement(&self) -> f64 {
        self.maintenance_ops as f64 / N as f64
    }

    fn measurements_per_s(&self) -> f64 {
        N as f64 / self.elapsed_s
    }

    fn json(&self) -> String {
        format!(
            "{{\"maintenance_ops\": {}, \"ops_per_measurement\": {:.3}, \
             \"tuples\": {}, \"elapsed_s\": {:.6}, \"measurements_per_s\": {:.0}}}",
            self.maintenance_ops,
            self.ops_per_measurement(),
            self.tuples,
            self.elapsed_s,
            self.measurements_per_s(),
        )
    }
}

fn sketch_run(times: &[f64], batched: bool) -> (QuantileSketch, IngestRun) {
    let mut sketch = QuantileSketch::new(EPSILON).expect("epsilon");
    let start = Instant::now();
    if batched {
        for chunk in times.chunks(CHUNK) {
            sketch.push_batch(chunk);
        }
    } else {
        for &x in times {
            sketch.insert(x);
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let run = IngestRun {
        maintenance_ops: sketch.maintenance_ops(),
        tuples: sketch.tuples(),
        elapsed_s,
    };
    (sketch, run)
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        block_size: 50,
        refit_every_blocks: 5,
        bootstrap: None, // gate the ingest path, not the bootstrap
        ..StreamConfig::default()
    }
}

fn analyzer_run(times: &[f64], batched: bool) -> (StreamAnalyzer, IngestRun) {
    let mut analyzer = StreamAnalyzer::new(stream_config()).expect("config");
    let start = Instant::now();
    if batched {
        for chunk in times.chunks(CHUNK) {
            analyzer.push_batch(chunk).expect("clean feed");
        }
    } else {
        analyzer.extend(times.iter().copied()).expect("clean feed");
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let run = IngestRun {
        maintenance_ops: analyzer.sketch().maintenance_ops(),
        tuples: analyzer.sketch().tuples(),
        elapsed_s,
    };
    (analyzer, run)
}

/// Approximate resident analyzer state, in bytes: sketch tuples
/// (`(v, g, delta)` = 24 bytes), the i.i.d. monitor window, and the
/// block maxima — the bounded-memory footprint the streaming design
/// trades per-item work for.
fn analyzer_state_bytes(a: &StreamAnalyzer) -> usize {
    a.sketch().tuples() * 24 + a.monitor().len() * 8 + a.maxima().len() * 8
}

/// Gate one level: itemized must cost at least `MIN_SPEEDUP`× the
/// batched maintenance ops per measurement.
fn gate(level: &str, itemized: &IngestRun, batched: &IngestRun) -> f64 {
    let speedup = itemized.maintenance_ops as f64 / batched.maintenance_ops as f64;
    eprintln!(
        "{level}: itemized {:.1} ops/measurement, batched {:.1} ops/measurement \
         ({speedup:.1}x, gate {MIN_SPEEDUP}x)",
        itemized.ops_per_measurement(),
        batched.ops_per_measurement(),
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "{level} ingest regression: batched maintenance is only {speedup:.2}x \
         cheaper than itemized (gate: {MIN_SPEEDUP}x)"
    );
    speedup
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ingest.json".to_string());
    let times = campaign(N, 42);

    // Sketch level.
    let (sketch_item, item) = sketch_run(&times, false);
    let (sketch_batch, batch) = sketch_run(&times, true);
    assert_eq!(
        sketch_batch, sketch_item,
        "batched sketch diverged from itemized"
    );
    let sketch_speedup = gate("sketch", &item, &batch);

    // Full analyzer (sketch + monitor + block maxima + refits).
    let (analyzer_item, a_item) = analyzer_run(&times, false);
    let (analyzer_batch, a_batch) = analyzer_run(&times, true);
    assert_eq!(
        save_analyzer(&analyzer_batch),
        save_analyzer(&analyzer_item),
        "batched analyzer checkpoint diverged from itemized"
    );
    let analyzer_speedup = gate("analyzer", &a_item, &a_batch);

    let state_bytes = analyzer_state_bytes(&analyzer_batch);
    let json = format!(
        "{{\n  \"schema\": \"mbpta-bench-ingest/1\",\n  \"n\": {N},\n  \
         \"chunk\": {CHUNK},\n  \"sketch\": {{\n    \"epsilon\": {EPSILON},\n    \
         \"itemized\": {},\n    \"batched\": {},\n    \"speedup_ops\": {sketch_speedup:.2}\n  }},\n  \
         \"analyzer\": {{\n    \"itemized\": {},\n    \"batched\": {},\n    \
         \"speedup_ops\": {analyzer_speedup:.2},\n    \"state_bytes\": {state_bytes},\n    \
         \"bytes_per_measurement\": {:.4}\n  }},\n  \
         \"gate\": {{\"min_speedup_ops\": {MIN_SPEEDUP}, \"pass\": true}}\n}}\n",
        item.json(),
        batch.json(),
        a_item.json(),
        a_batch.json(),
        state_bytes as f64 / N as f64,
    );
    std::fs::write(&out_path, &json).expect("write report");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
