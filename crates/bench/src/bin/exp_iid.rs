//! **E1 — i.i.d. test values** (paper Section III, "Fulfilling the i.i.d
//! properties").
//!
//! The paper reports, for 3,000 TVCA runs on the randomized platform:
//! Ljung-Box p = 0.83, two-sample KS p = 0.45 — both above the 0.05
//! threshold, enabling MBPTA. This binary reruns that protocol on the
//! simulated platform and prints the same two values.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_iid
//! ```

use proxima_bench::{tvca_campaign, BASE_SEED, PAPER_RUNS};
use proxima_mbpta::iid::validate;
use proxima_sim::PlatformConfig;
use proxima_workload::tvca::ControlMode;

fn main() {
    println!("=== E1: i.i.d. validation of the TVCA campaign (RAND platform) ===");
    println!("protocol: {PAPER_RUNS} runs, cache flush + fresh PRNG seed per run\n");

    let campaign = tvca_campaign(
        PlatformConfig::mbpta_compliant(),
        ControlMode::Nominal,
        PAPER_RUNS,
        BASE_SEED,
    );
    let report = validate(campaign.times(), 0.05, None).expect("gate runs");

    println!("{:<38}{:>10}{:>12}", "test", "p-value", "paper");
    println!(
        "{:<38}{:>10.2}{:>12}",
        "Ljung-Box (independence)", report.ljung_box.p_value, "0.83"
    );
    println!(
        "{:<38}{:>10.2}{:>12}",
        "two-sample KS (identical distribution)", report.ks.p_value, "0.45"
    );
    println!(
        "\nboth above 0.05 => i.i.d. accepted: {}",
        if report.passed {
            "YES (matches paper)"
        } else {
            "NO"
        }
    );
}
