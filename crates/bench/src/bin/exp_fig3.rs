//! **E3 — Figure 3**: MBPTA vs DET observed execution times.
//!
//! The figure's bars: DET and RAND average execution times (comparable),
//! the DET high watermark, the industrial bounds HWM+20% / HWM+50%, and
//! the MBPTA pWCET estimates at cutoff probabilities 10⁻⁶ … 10⁻¹⁵, which
//! start around the HWM+50% level and stay within the same order of
//! magnitude. The DET layout sweep underneath quantifies the uncertainty
//! the engineering factor is guessing at.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_fig3
//! ```

use proxima_bench::{fmt_cycles, tvca_campaign, BASE_SEED, PAPER_RUNS};
use proxima_mbpta::baseline::MbtaEstimate;
use proxima_mbpta::{MbptaConfig, Pipeline};
use proxima_sim::{Platform, PlatformConfig};
use proxima_workload::tvca::{ControlMode, Scale, Tvca, TvcaConfig};

fn main() {
    println!("=== E3 (Figure 3): MBPTA vs DET for TVCA ===\n");

    // RAND campaign + analysis.
    let rand_campaign = tvca_campaign(
        PlatformConfig::mbpta_compliant(),
        ControlMode::Nominal,
        PAPER_RUNS,
        BASE_SEED,
    );
    let report = Pipeline::new(MbptaConfig::default())
        .analyze(rand_campaign.times())
        .expect("MBPTA");
    let rand_summary = rand_campaign.summary().expect("summary");

    // DET campaign (seed-insensitive: a handful of runs suffices).
    let det_campaign = tvca_campaign(
        PlatformConfig::deterministic(),
        ControlMode::Nominal,
        50,
        BASE_SEED,
    );
    let det_summary = det_campaign.summary().expect("summary");

    println!("{:<34}{:>16}", "bar", "cycles");
    println!("{:<34}{:>16}", "DET average", fmt_cycles(det_summary.mean));
    println!(
        "{:<34}{:>16}   ({:+.2}% vs DET)",
        "RAND average",
        fmt_cycles(rand_summary.mean),
        100.0 * (rand_summary.mean - det_summary.mean) / det_summary.mean
    );
    println!(
        "{:<34}{:>16}",
        "DET high watermark",
        fmt_cycles(det_summary.max)
    );
    for margin in MbtaEstimate::customary_margins() {
        let est = MbtaEstimate::from_campaign(&det_campaign, margin).expect("baseline");
        println!(
            "{:<34}{:>16}",
            format!("MBTA bound (HWM+{:.0}%)", margin * 100.0),
            fmt_cycles(est.bound)
        );
    }
    for exp in [6i32, 9, 12, 15] {
        let budget = report.budget_for(10f64.powi(-exp)).expect("budget");
        println!(
            "{:<34}{:>16}   ({:.2}x DET hwm)",
            format!("pWCET @ 1e-{exp}"),
            fmt_cycles(budget),
            budget / det_summary.max
        );
    }

    // The layout sensitivity MBTA's margin is supposed to cover.
    println!("\nDET layout sweep (same program, different link layouts):");
    let mut det_platform = Platform::new(PlatformConfig::deterministic());
    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for layout in 0..10u64 {
        let tvca = Tvca::new(TvcaConfig {
            scale: Scale::Full,
            layout_seed: layout,
        });
        let cycles = det_platform
            .run(&tvca.trace(ControlMode::Nominal), 0)
            .cycles as f64;
        lo = lo.min(cycles);
        hi = hi.max(cycles);
        println!("  layout {layout}: {}", fmt_cycles(cycles));
    }
    println!(
        "  spread {} .. {} ({:.2}% of mean) — the uncertainty the engineering factor guesses at",
        fmt_cycles(lo),
        fmt_cycles(hi),
        100.0 * (hi - lo) / det_summary.mean
    );
}
