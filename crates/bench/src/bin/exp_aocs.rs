//! **E5 — Second case study**: the synthetic AOCS (attitude and orbit
//! control) application through the full MBPTA protocol.
//!
//! The paper evaluates one application; this experiment repeats every
//! headline claim — i.i.d. gate, tight pWCET curve, DET-comparable
//! averages, per-path envelope — on a structurally different space
//! workload (quaternion/Kalman/star-catalogue instead of a thrust control
//! loop), showing the result is a platform property rather than a TVCA
//! idiosyncrasy.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_aocs
//! ```

use proxima_bench::{fmt_cycles, trace_campaign, BASE_SEED};
use proxima_mbpta::baseline::MbtaEstimate;
use proxima_mbpta::paths::PerPathAnalysis;
use proxima_mbpta::risk::ActivationRate;
use proxima_mbpta::{Campaign, MbptaConfig, Pipeline};
use proxima_sim::PlatformConfig;
use proxima_workload::aocs::{Aocs, AocsConfig, AocsMode};

fn main() {
    println!("=== E5: AOCS second case study under the full MBPTA protocol ===\n");
    let aocs = Aocs::new(AocsConfig::default());
    let runs = 2000;

    // Per-path campaigns on the RAND platform.
    let labelled: Vec<(String, Vec<f64>)> = aocs
        .paths()
        .into_iter()
        .enumerate()
        .map(|(i, mode)| {
            let trace = aocs.trace(mode);
            let campaign = trace_campaign(
                PlatformConfig::mbpta_compliant(),
                &trace,
                runs,
                BASE_SEED + (i as u64) * 137_911,
            );
            (mode.to_string(), campaign.times().to_vec())
        })
        .collect();

    // Gate evidence for the nominal path.
    let tracking = Pipeline::new(MbptaConfig::default())
        .analyze(&labelled[0].1)
        .expect("tracking analysis");
    println!(
        "i.i.d. gate (tracking): Ljung-Box p={:.2}, two-sample KS p={:.2} => {}",
        tracking.iid.ljung_box.p_value,
        tracking.iid.ks.p_value,
        if tracking.iid.passed {
            "PASSED"
        } else {
            "REJECTED"
        }
    );

    // Per-path pWCET and the program envelope. A path whose execution
    // time is *constant* on the randomized platform (the safe-mode
    // fallback fits entirely in cache) has an exact WCET — MBPTA correctly
    // refuses to fit a tail to it, and the envelope takes its constant.
    let (probabilistic, exact): (Vec<_>, Vec<_>) = labelled
        .iter()
        .partition(|(_, times)| times.iter().any(|t| *t != times[0]));
    let probabilistic: Vec<(String, Vec<f64>)> = probabilistic.into_iter().cloned().collect();
    let analysis = PerPathAnalysis::run(&probabilistic, &MbptaConfig::default()).expect("per-path");
    println!("\n{:<14}{:>14}{:>18}", "path", "hwm", "pWCET@1e-12");
    for path in analysis.paths() {
        println!(
            "{:<14}{:>14}{:>18}",
            path.label,
            fmt_cycles(path.report.high_watermark()),
            fmt_cycles(path.report.budget_for(1e-12).expect("budget"))
        );
    }
    let mut envelope_label = String::new();
    let mut envelope = f64::MIN;
    let (worst, prob_envelope) = analysis.worst_path_budget(1e-12).expect("budget");
    if prob_envelope > envelope {
        envelope = prob_envelope;
        envelope_label = worst.to_string();
    }
    for (label, times) in &exact {
        let constant = times[0];
        println!(
            "{:<14}{:>14}{:>18}   (constant-time path: exact WCET)",
            label,
            fmt_cycles(constant),
            fmt_cycles(constant)
        );
        if constant > envelope {
            envelope = constant;
            envelope_label = label.clone();
        }
    }
    println!(
        "program envelope: {} (path `{envelope_label}`)",
        fmt_cycles(envelope)
    );

    // DET comparison.
    let det_trace = aocs.trace(AocsMode::Tracking);
    let det = trace_campaign(PlatformConfig::deterministic(), &det_trace, 30, BASE_SEED);
    let det_mean = det.times().iter().sum::<f64>() / det.times().len() as f64;
    let rand_mean = labelled[0].1.iter().sum::<f64>() / labelled[0].1.len() as f64;
    println!(
        "\naverages: DET {} vs RAND {} ({:+.2}%)",
        fmt_cycles(det_mean),
        fmt_cycles(rand_mean),
        100.0 * (rand_mean - det_mean) / det_mean
    );
    let det_campaign = Campaign::from_times(det.times().to_vec()).expect("campaign");
    let mbta = MbtaEstimate::from_campaign(&det_campaign, 0.5).expect("baseline");
    println!("industrial bound: {mbta}");

    // Standard-driven cutoff selection: a 10 Hz AOCS task with a 1e-9/hour
    // target.
    let rate = ActivationRate::from_hz(10.0).expect("rate");
    let cutoff = rate.per_activation_cutoff(1e-9).expect("cutoff");
    let budget = analysis.worst_path_budget(cutoff).expect("budget").1;
    println!(
        "\nstandard-driven budget: 1e-9/hour at 10 Hz => per-activation cutoff {cutoff:.2e} => {} cycles",
        fmt_cycles(budget)
    );
}
