//! **A6 — PRNG quality ablation**: MBPTA's dependence on the quality of
//! the hardware randomization (the reason the paper builds on a SIL3
//! pseudo-random number generator).
//!
//! Swaps the platform PRNG between the SIL3-style MWC, xorshift, and a
//! deliberately weak 16-bit LCG, and reports health-battery results,
//! timing diversity and the i.i.d. gate.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_prng
//! ```

use proxima_bench::{tvca_campaign, BASE_SEED};
use proxima_mbpta::iid::validate;
use proxima_prng::{health, PrngKind};
use proxima_sim::PlatformConfig;
use proxima_workload::tvca::ControlMode;

fn main() {
    println!("=== A6: PRNG quality and MBPTA applicability ===\n");
    println!(
        "{:<12}{:>10}{:>14}{:>12}{:>12}{:>10}",
        "prng", "health", "distinct-t", "sd", "LB p", "iid"
    );
    for kind in [PrngKind::Mwc, PrngKind::XorShift, PrngKind::WeakLcg] {
        let mut rng = kind.build(7);
        let healthy = health::run_battery(rng.as_mut(), 4096).all_passed();

        let mut config = PlatformConfig::mbpta_compliant();
        config.prng = kind;
        let campaign = tvca_campaign(config, ControlMode::Nominal, 600, BASE_SEED);
        let distinct: std::collections::HashSet<u64> =
            campaign.times().iter().map(|&t| t as u64).collect();
        let sd = campaign.summary().map(|s| s.std_dev).unwrap_or(0.0);
        let gate = validate(campaign.times(), 0.05, None);
        let (lb, pass) = match &gate {
            Ok(r) => (format!("{:.3}", r.ljung_box.p_value), r.passed.to_string()),
            Err(e) => (format!("{e}"), "n/a".into()),
        };
        println!(
            "{:<12}{:>10}{:>14}{:>12.1}{:>12}{:>10}",
            kind.to_string(),
            if healthy { "pass" } else { "FAIL" },
            distinct.len(),
            sd,
            lb,
            pass
        );
    }
    println!("\nexpected shape: the two certified-quality generators behave");
    println!("identically (health pass, gate passes). the weak LCG fails the");
    println!("online health battery a SIL3 generator must run — even when a");
    println!("coarse workload happens to mask the defect in the timing numbers,");
    println!("the certification evidence MBPTA rests on is gone. (Agirre DSD'15)");
}
