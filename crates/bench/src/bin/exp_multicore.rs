//! **A8 — Multicore bus contention**: the 4-core dimension of the
//! reference architecture.
//!
//! The paper's platform is a 4-core LEON3 with a shared bus; TVCA runs
//! alone in the evaluation, but the MBPTA argument extends to contention:
//! round-robin arbitration with a randomized phase turns interference
//! delays into a bounded random variable the campaign samples. This
//! experiment sweeps the number of interfering cores and reports the
//! i.i.d. gate, averages, and pWCET estimates.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_multicore
//! ```

use proxima_bench::{fmt_cycles, tvca_campaign, BASE_SEED};
use proxima_mbpta::{MbptaConfig, Pipeline};
use proxima_sim::bus::BusModel;
use proxima_sim::PlatformConfig;
use proxima_workload::tvca::ControlMode;

fn main() {
    println!("=== A8: shared-bus contention on the 4-core platform ===\n");
    println!(
        "{:<14}{:>14}{:>14}{:>12}{:>16}{:>16}",
        "interferers", "mean", "hwm", "LB p", "pWCET@1e-9", "pWCET@1e-15"
    );
    for interfering in 0..=3u64 {
        let mut config = PlatformConfig::mbpta_compliant();
        config.bus = BusModel::leon3(interfering);
        let campaign = tvca_campaign(config, ControlMode::Nominal, 1500, BASE_SEED);
        let summary = campaign.summary().expect("summary");
        match Pipeline::new(MbptaConfig::default()).analyze(campaign.times()) {
            Ok(report) => println!(
                "{:<14}{:>14}{:>14}{:>12.3}{:>16}{:>16}",
                interfering,
                fmt_cycles(summary.mean),
                fmt_cycles(summary.max),
                report.iid.ljung_box.p_value,
                fmt_cycles(report.budget_for(1e-9).expect("budget")),
                fmt_cycles(report.budget_for(1e-15).expect("budget")),
            ),
            Err(e) => println!("{interfering:<14} analysis failed: {e}"),
        }
    }
    println!("\nexpected shape: each added interferer raises mean and pWCET by a");
    println!("bounded increment (≤ one bus slot per L1 miss), the gate keeps");
    println!("passing (the arbitration phase is randomized), and the pWCET-to-mean");
    println!("gap widens as bus delays add variance.");
}
