//! **A5 — Per-path analysis** vs pooled analysis.
//!
//! The paper: "we make per-path analysis taking the maximum across paths".
//! Pooling observations from different paths into one campaign mixes
//! distributions (the i.i.d. gate's identical-distribution half exists to
//! catch exactly this); per-path analysis keeps each campaign homogeneous
//! and takes the envelope.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_paths
//! ```

use proxima_bench::{fmt_cycles, tvca_campaign, BASE_SEED};
use proxima_mbpta::iid::validate;
use proxima_mbpta::paths::PerPathAnalysis;
use proxima_mbpta::MbptaConfig;
use proxima_sim::PlatformConfig;
use proxima_workload::tvca::{Tvca, TvcaConfig};

fn main() {
    println!("=== A5: per-path MBPTA vs pooled analysis ===\n");
    let tvca = Tvca::new(TvcaConfig::default());
    let runs = 800;

    // Per-path campaigns.
    let labelled: Vec<(String, Vec<f64>)> = tvca
        .paths()
        .into_iter()
        .enumerate()
        .map(|(i, mode)| {
            let c = tvca_campaign(
                PlatformConfig::mbpta_compliant(),
                mode,
                runs,
                BASE_SEED + (i as u64) * 137_911,
            );
            (mode.to_string(), c.times().to_vec())
        })
        .collect();

    let analysis = PerPathAnalysis::run(&labelled, &MbptaConfig::default()).expect("per-path");
    println!("{:<18}{:>14}{:>18}", "path", "hwm", "pWCET@1e-12");
    for path in analysis.paths() {
        println!(
            "{:<18}{:>14}{:>18}",
            path.label,
            fmt_cycles(path.report.high_watermark()),
            fmt_cycles(path.report.budget_for(1e-12).expect("budget"))
        );
    }
    let (worst, envelope) = analysis.worst_path_budget(1e-12).expect("budget");
    println!(
        "\nprogram-level (max across paths): {} (path `{worst}`)",
        fmt_cycles(envelope)
    );

    // Pooled alternative: interleave all paths into one campaign.
    let mut pooled = Vec::new();
    let max_len = labelled.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
    for i in 0..max_len {
        for (_, times) in &labelled {
            if let Some(&t) = times.get(i) {
                pooled.push(t);
            }
        }
    }
    match validate(&pooled, 0.05, None) {
        Ok(r) => println!(
            "\npooled campaign i.i.d. gate: LB p={:.4}, KS p={:.4} => {}",
            r.ljung_box.p_value,
            r.ks.p_value,
            if r.passed {
                "passed (paths too similar to distinguish)"
            } else {
                "REJECTED — interleaving paths violates i.i.d."
            }
        ),
        Err(e) => println!("\npooled campaign not testable: {e}"),
    }
}
