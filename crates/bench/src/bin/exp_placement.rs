//! **A1 — Placement-policy ablation**: modulo vs random-modulo vs fully
//! hashed random placement.
//!
//! Reproduces the design argument of random modulo (Hernandez et al., DAC
//! 2016): it randomizes inter-object conflicts (making MBPTA applicable)
//! while preserving the intra-window conflict-freedom that keeps average
//! performance close to modulo; fully hashed placement randomizes too but
//! costs average performance on sequential data.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_placement
//! ```

use proxima_bench::{fmt_cycles, tvca_campaign, BASE_SEED};
use proxima_mbpta::iid::validate;
use proxima_sim::{PlacementPolicy, PlatformConfig};
use proxima_workload::tvca::ControlMode;

fn config_with(placement: PlacementPolicy) -> PlatformConfig {
    let mut c = PlatformConfig::mbpta_compliant();
    c.il1.placement = placement;
    c.dl1.placement = placement;
    c
}

fn main() {
    println!("=== A1: cache placement policy ablation (TVCA, RAND otherwise) ===\n");
    println!(
        "{:<16}{:>14}{:>14}{:>12}{:>14}",
        "placement", "mean", "max-min", "LB p", "iid-pass"
    );
    for placement in [
        PlacementPolicy::Modulo,
        PlacementPolicy::RandomModulo,
        PlacementPolicy::HashRandom,
    ] {
        let campaign = tvca_campaign(config_with(placement), ControlMode::Nominal, 600, BASE_SEED);
        let s = campaign.summary().expect("summary");
        // The gate needs variation; a constant sample means placement does
        // not randomize — report it as not applicable.
        let gate = validate(campaign.times(), 0.05, None);
        let (lb, pass) = match &gate {
            Ok(r) => (format!("{:.3}", r.ljung_box.p_value), r.passed.to_string()),
            Err(_) => ("n/a".into(), "no (no jitter)".into()),
        };
        println!(
            "{:<16}{:>14}{:>14}{:>12}{:>14}",
            placement.to_string(),
            fmt_cycles(s.mean),
            fmt_cycles(s.max - s.min),
            lb,
            pass
        );
    }
    println!("\nexpected shape: under modulo placement only the (small) replacement");
    println!("jitter remains and the layout's conflict pattern is never sampled —");
    println!("the placement risk stays invisible to measurements. random-modulo and");
    println!("hash-random expose the full placement distribution (wider max-min,");
    println!("gate passes), and random-modulo's mean stays closest to modulo");
    println!("because intra-window locality is preserved (the DAC 2016 argument).");
}
