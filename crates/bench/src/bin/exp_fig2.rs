//! **E2 — Figure 2**: pWCET estimates obtained with MBPTA for TVCA.
//!
//! The figure plots execution time (x) against exceedance probability on a
//! log scale (y): the staircase is the empirical survival of the observed
//! execution times; the straight line is the Gumbel projection, which must
//! tightly upper-bound the observations. This binary prints both series.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_fig2
//! ```

use proxima_bench::{fmt_cycles, tvca_campaign, BASE_SEED, PAPER_RUNS};
use proxima_mbpta::{render_pwcet_csv, render_survival_csv, MbptaConfig, Pipeline};
use proxima_sim::PlatformConfig;
use proxima_stats::ecdf::Ecdf;
use proxima_workload::tvca::ControlMode;

fn main() {
    println!("=== E2 (Figure 2): pWCET curve for TVCA on the RAND platform ===\n");
    let campaign = tvca_campaign(
        PlatformConfig::mbpta_compliant(),
        ControlMode::Nominal,
        PAPER_RUNS,
        BASE_SEED,
    );
    let report = Pipeline::new(MbptaConfig::default())
        .analyze(campaign.times())
        .expect("MBPTA");

    // Empirical survival staircase (sampled at round probabilities).
    let ecdf = Ecdf::new(campaign.times()).expect("ecdf");
    println!("observed execution times (empirical survival):");
    println!("{:>16}{:>16}", "cycles", "P(exceed)");
    for exp in 0..=3 {
        let p = 10f64.powi(-exp);
        // Largest observation exceeded with probability ≥ p.
        let q = ecdf.quantile(1.0 - p * 0.999).expect("quantile");
        println!("{:>16}{:>16.0e}", fmt_cycles(q), p);
    }
    println!(
        "{:>16}{:>16}",
        fmt_cycles(report.high_watermark()),
        "1/3000 (hwm)"
    );

    // The Gumbel projection (the straight line of the figure).
    println!(
        "\nMBPTA projection (Gumbel tail, block={}):",
        report.fit.block_size
    );
    println!("{:>16}{:>16}", "cycles", "P(exceed)");
    for exp in 3..=15 {
        let p = 10f64.powi(-exp);
        let budget = report.budget_for(p).expect("budget");
        println!("{:>16}{:>16.0e}", fmt_cycles(budget), p);
    }

    // Plot-data export for external tooling.
    let out_dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(out_dir).is_ok() {
        let probs: Vec<f64> = (3..=15).map(|e| 10f64.powi(-e)).collect();
        if let Ok(csv) = render_pwcet_csv(&report, &probs) {
            let _ = std::fs::write(out_dir.join("fig2_projection.csv"), csv);
        }
        if let Ok(csv) = render_survival_csv(campaign.times()) {
            let _ = std::fs::write(out_dir.join("fig2_observed.csv"), csv);
        }
        println!("\nplot data written to target/experiments/fig2_{{projection,observed}}.csv");
    }

    // The figure's qualitative claim.
    let b_at_hwm_level = report.budget_for(1.0 / PAPER_RUNS as f64).expect("budget");
    println!(
        "\nprojection at the 1/n level: {} vs observed hwm {} => {}",
        fmt_cycles(b_at_hwm_level),
        fmt_cycles(report.high_watermark()),
        if b_at_hwm_level >= report.high_watermark() * 0.995 {
            "tight upper bound (matches the figure)"
        } else {
            "UNDER the observations — investigate"
        }
    );
}
