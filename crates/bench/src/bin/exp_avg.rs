//! **E4 — Average performance**: the paper's claim that the hardware
//! randomization does not hurt average execution time ("there is not
//! noticeable difference").
//!
//! Compares DET against the RAND hardware *in operation mode* (randomized
//! caches/TLBs, natural FPU latency — the forced-worst FPU is an
//! analysis-phase setting, not a deployment cost) for the TVCA and every
//! auxiliary kernel of the benchmark suite.
//!
//! ```text
//! cargo run --release -p proxima-bench --bin exp_avg
//! ```

use proxima_bench::{fmt_cycles, trace_campaign, tvca_campaign, BASE_SEED};
use proxima_sim::PlatformConfig;
use proxima_workload::bench_suite::Benchmark;
use proxima_workload::tvca::ControlMode;

fn main() {
    println!("=== E4: average performance, DET vs RAND (operation mode) ===\n");
    println!(
        "{:<16}{:>16}{:>16}{:>10}",
        "workload", "DET mean", "RAND mean", "delta"
    );

    let runs_rand = 500;
    let runs_det = 30;

    // TVCA first.
    let det = tvca_campaign(
        PlatformConfig::deterministic(),
        ControlMode::Nominal,
        runs_det,
        BASE_SEED,
    );
    let rand = tvca_campaign(
        PlatformConfig::mbpta_operation(),
        ControlMode::Nominal,
        runs_rand,
        BASE_SEED,
    );
    print_row("tvca", mean(det.times()), mean(rand.times()));

    // Auxiliary kernels.
    for bench in Benchmark::all() {
        let trace = bench.trace();
        let det = trace_campaign(PlatformConfig::deterministic(), &trace, runs_det, BASE_SEED);
        let rand = trace_campaign(
            PlatformConfig::mbpta_operation(),
            &trace,
            runs_rand,
            BASE_SEED,
        );
        print_row(bench.name(), mean(det.times()), mean(rand.times()));
    }

    println!("\npaper's claim: deltas are small (no noticeable average slowdown).");
    println!("note: stride-sweep is the deliberate pathological case — modulo");
    println!("placement maps its page-stride accesses to a single set, so random");
    println!("placement is dramatically FASTER there, not slower.");
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn print_row(name: &str, det: f64, rand: f64) {
    println!(
        "{:<16}{:>16}{:>16}{:>9.2}%",
        name,
        fmt_cycles(det),
        fmt_cycles(rand),
        100.0 * (rand - det) / det
    );
}
