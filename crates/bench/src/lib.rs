//! Shared harness code for the experiment binaries and Criterion benches.
//!
//! Each `exp_*` binary regenerates one table or figure of the paper (see
//! `DESIGN.md` §4 and `EXPERIMENTS.md`); this library holds the common
//! campaign plumbing so every experiment uses exactly the same protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proxima_mbpta::Campaign;
use proxima_sim::{Inst, Platform, PlatformConfig};
use proxima_workload::tvca::{ControlMode, Tvca, TvcaConfig};

/// The number of measured runs the paper uses (3,000).
pub const PAPER_RUNS: usize = 3000;

/// Default base seed for campaigns; chosen away from the known bad pocket
/// near 1.0e6 (see `tests/per_path.rs`).
pub const BASE_SEED: u64 = 10_000_000;

/// Run a measurement campaign of the TVCA `mode` path on `config`.
///
/// # Panics
///
/// Panics if the campaign cannot be constructed (simulated platforms
/// always produce valid times).
pub fn tvca_campaign(
    config: PlatformConfig,
    mode: ControlMode,
    runs: usize,
    base_seed: u64,
) -> Campaign {
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(mode);
    let mut platform = Platform::new(config);
    Campaign::measure(&mut platform, &trace, runs, base_seed).expect("simulated campaign is valid")
}

/// Run a campaign of an arbitrary trace.
///
/// # Panics
///
/// Panics if the campaign cannot be constructed.
pub fn trace_campaign(
    config: PlatformConfig,
    trace: &[Inst],
    runs: usize,
    base_seed: u64,
) -> Campaign {
    let mut platform = Platform::new(config);
    Campaign::measure(&mut platform, trace, runs, base_seed).expect("simulated campaign is valid")
}

/// Format a cycle count with thousands separators for table output.
pub fn fmt_cycles(c: f64) -> String {
    let raw = format!("{c:.0}");
    let mut out = String::new();
    for (i, ch) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_cycles_groups_thousands() {
        assert_eq!(fmt_cycles(1234567.0), "1,234,567");
        assert_eq!(fmt_cycles(999.0), "999");
        assert_eq!(fmt_cycles(1000.0), "1,000");
    }

    #[test]
    fn tvca_campaign_runs() {
        let c = tvca_campaign(
            PlatformConfig::mbpta_compliant(),
            ControlMode::Nominal,
            20,
            BASE_SEED,
        );
        assert_eq!(c.len(), 20);
    }
}
