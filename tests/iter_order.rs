//! Registration-order invariance: the order in which channels join a
//! session (and the order their measurements interleave) must never
//! reach the per-channel verdicts. This is the regression battery for
//! switching the session's channel index to a `BTreeMap` and for the
//! `no-unordered-iter` lint rule: if anyone reintroduces an
//! iteration-order dependence, the **bit-identity** assertions here
//! catch it before the lint has to.

use proxima::prelude::*;
use proxima::stream::StreamConfig;
use rand::{Rng, SeedableRng};

fn campaign(base: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| base + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 80.0)
        .collect()
}

fn three_channels() -> Vec<(&'static str, Vec<f64>)> {
    vec![
        ("path/nominal", campaign(1.0e5, 1200, 4)),
        ("core1/saturated", campaign(1.1e5, 1200, 20)),
        ("tenant/fault", campaign(1.3e5, 1200, 40)),
    ]
}

/// Round-robin interleave in the given channel order.
fn interleave(channels: &[(&'static str, Vec<f64>)]) -> Vec<Tagged> {
    let n = channels.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    let mut feed = Vec::new();
    for i in 0..n {
        for (name, times) in channels {
            if let Some(&x) = times.get(i) {
                feed.push(Tagged::new(*name, x));
            }
        }
    }
    feed
}

/// One measurement stream per ordering: same per-channel data, three
/// different arrival/registration orders.
fn orderings() -> Vec<Vec<Tagged>> {
    let channels = three_channels();
    let mut reversed = channels.clone();
    reversed.reverse();
    // Sequential blocks: each channel registers and finishes entirely
    // before the next one appears.
    let mut blocks = Vec::new();
    for (name, times) in &reversed {
        for &x in times {
            blocks.push(Tagged::new(*name, x));
        }
    }
    vec![interleave(&channels), interleave(&reversed), blocks]
}

/// The merged per-channel verdicts rendered to comparable bits: the
/// full report debug form plus the exact budget bit patterns at two
/// exceedance levels.
fn fingerprint(feed: &[Tagged], jobs: usize) -> Vec<(String, String, u64, u64)> {
    let mut session = MbptaConfig::default()
        .session()
        .jobs(jobs)
        .build_batch()
        .expect("valid config");
    session.extend(feed.iter().cloned()).expect("clean feed");
    let merged = session.merge();
    assert!(merged.all_ok(), "{merged:?}");
    let mut out: Vec<(String, String, u64, u64)> = merged
        .channels()
        .iter()
        .map(|c| {
            let verdict = c.outcome.as_ref().expect("all_ok checked");
            (
                c.channel.as_str().to_string(),
                format!("{verdict:?}"),
                verdict.budget_for(1e-12).expect("valid p").to_bits(),
                verdict.budget_for(1e-9).expect("valid p").to_bits(),
            )
        })
        .collect();
    // Sort by channel name so fingerprints compare order-free; the
    // values inside must already be order-free.
    out.sort();
    out
}

#[test]
fn batch_verdicts_ignore_registration_order() {
    let all = orderings();
    let reference = fingerprint(&all[0], 1);
    assert_eq!(reference.len(), 3);
    for (i, feed) in all.iter().enumerate().skip(1) {
        assert_eq!(
            reference,
            fingerprint(feed, 1),
            "ordering #{i} changed a verdict bit"
        );
    }
}

#[test]
fn registration_order_invariance_holds_at_every_jobs() {
    let all = orderings();
    let reference = fingerprint(&all[0], 1);
    for feed in &all {
        for jobs in [2, 3, 8] {
            assert_eq!(
                reference,
                fingerprint(feed, jobs),
                "jobs={jobs} broke order invariance"
            );
        }
    }
}

#[test]
fn stream_snapshots_ignore_registration_order() {
    let stream = StreamConfig {
        block_size: 25,
        refit_every_blocks: 4,
        target_p: 1e-12,
        bootstrap: None,
        ..StreamConfig::default()
    };
    let mut per_order = Vec::new();
    for feed in orderings() {
        let factory = proxima::stream::StreamFactory::new(stream.clone()).expect("valid config");
        let mut session = MbptaConfig::default()
            .session()
            .snapshot_every(100)
            .target_p(1e-12)
            .build_with(factory)
            .expect("valid config");
        session.extend(feed.iter().cloned()).expect("clean feed");
        let merged = session.merge();
        let mut channels: Vec<(String, String)> = merged
            .channels()
            .iter()
            .map(|c| (c.channel.as_str().to_string(), format!("{:?}", c.outcome)))
            .collect();
        channels.sort();
        per_order.push(channels);
    }
    assert_eq!(per_order[0], per_order[1], "reversed order diverged");
    assert_eq!(per_order[0], per_order[2], "sequential blocks diverged");
}
