//! The AOCS second case study (experiment E5 as assertions).

// Deliberately exercises the deprecated pre-session API: these tests
// double as regression coverage for the `analyze`/`PipelineStreamExt`
// shims, which must stay behaviourally identical to the session path.
#![allow(deprecated)]

use proxima::mbpta::{analyze, MbptaConfig};
use proxima::prelude::*;
use proxima::workload::aocs::{Aocs, AocsConfig, AocsMode};

fn campaign(mode: AocsMode, runs: usize, base: u64) -> Vec<f64> {
    let aocs = Aocs::new(AocsConfig::default());
    let trace = aocs.trace(mode);
    let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
    platform
        .campaign(&trace, runs, base)
        .into_iter()
        .map(|o| o.cycles as f64)
        .collect()
}

#[test]
fn aocs_tracking_passes_the_gate_and_fits() {
    let times = campaign(AocsMode::Tracking, 800, 10_000_000);
    let report = analyze(&times, &MbptaConfig::default()).expect("analysis");
    assert!(report.iid.passed);
    let b = report.budget_for(1e-12).expect("budget");
    assert!(b > report.high_watermark());
    assert!(b < report.high_watermark() * 1.5, "same order of magnitude");
}

#[test]
fn acquisition_dominates_tracking() {
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let tracking = campaign(AocsMode::Tracking, 150, 10_000_000);
    let acquisition = campaign(AocsMode::Acquisition, 150, 10_137_911);
    assert!(mean(&acquisition) > mean(&tracking) * 1.2);
}

#[test]
fn safe_mode_is_constant_time() {
    // The fallback path fits in cache: on the randomized platform its
    // execution time is exactly reproducible — an exact WCET, no tail to
    // fit (MBPTA refuses, correctly).
    let times = campaign(AocsMode::Safe, 100, 10_000_000);
    assert!(
        times.iter().all(|&t| t == times[0]),
        "safe mode must be constant"
    );
    assert!(analyze(&times, &MbptaConfig::default()).is_err());
}

#[test]
fn aocs_det_average_comparable_to_rand() {
    let aocs = Aocs::new(AocsConfig::default());
    let trace = aocs.trace(AocsMode::Tracking);
    let mut det = Platform::new(PlatformConfig::deterministic());
    let det_time = det.run(&trace, 0).cycles as f64;
    let rand_times = campaign(AocsMode::Tracking, 200, 10_000_000);
    let rand_mean = rand_times.iter().sum::<f64>() / rand_times.len() as f64;
    assert!(
        (rand_mean - det_time).abs() / det_time < 0.05,
        "det={det_time} rand={rand_mean}"
    );
}
