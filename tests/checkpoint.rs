//! Checkpoint/restart acceptance battery: resumed-vs-uninterrupted
//! **bit-identity** at arbitrary cut points for every engine family
//! (batch, stream, federated), at `--jobs {1,8}` and `--shards {1,4}`,
//! plus the golden-fixture compatibility guard for the on-disk format.
//!
//! The invariant under test: `AnalysisSession::checkpoint()` followed by
//! `AnalysisSession::restore()` yields a session whose every subsequent
//! snapshot, convergence announcement and merged verdict equals the
//! uninterrupted session's exactly — same bits, not just same values to
//! tolerance.

use proptest::prelude::*;
use proxima::mbpta::engine::{BatchFactory, EngineFactory};
use proxima::mbpta::session::SessionSnapshot;
use proxima::prelude::*;
use proxima::stream::{FederatedFactory, StreamFactory};

/// Every type with an `impl Encode for …` in the workspace's `persist.rs`
/// files, by target name. `mbpta-lint`'s `codec-discipline` rule parses
/// this list and fails the tree when a codec impl is missing from it:
/// adding a wire type means adding it here AND making sure the golden
/// fixtures below transitively exercise its byte layout.
const CODEC_COVERAGE: &[&str] = &[
    "BlockSpec",
    "BootstrapSpec",
    "BudgetInterval",
    "ChannelId",
    "EngineEstimate",
    "EngineKind",
    "EvtFit",
    "FederatedAnalyzer",
    "FederatedConfig",
    "Gev",
    "GofReport",
    "Gpd",
    "Gumbel",
    "IidEvidence",
    "IidHealth",
    "IidMonitor",
    "IidReport",
    "IidStatus",
    "KllSketch",
    "MbptaConfig",
    "MbptaError",
    "ObservationSummary",
    "Option<T>",
    "Provenance",
    "Pwcet",
    "PwcetSnapshot",
    "QuantileSketch",
    "Sketch",
    "SketchKind",
    "StatsError",
    "StreamAnalyzer",
    "StreamConfig",
    "Summary",
    "TestResult",
    "Tuple",
    "Vec<T>",
    "Verdict",
    "bool",
    "f64",
    "u64",
    "usize",
];

#[test]
fn codec_coverage_list_is_sorted_and_unique() {
    assert!(
        CODEC_COVERAGE.windows(2).all(|w| w[0] < w[1]),
        "keep CODEC_COVERAGE sorted and free of duplicates so review \
         diffs stay one-line"
    );
}

/// Deterministic synthetic campaign for one channel.
fn campaign(base: f64, n: usize, seed: u64) -> Vec<f64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| base + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 80.0)
        .collect()
}

/// A two-channel interleaved tagged feed.
fn feed(n_per_channel: usize, seed: u64) -> Vec<Tagged> {
    let a = campaign(1.0e5, n_per_channel, seed);
    let b = campaign(1.3e5, n_per_channel, seed + 100);
    let mut out = Vec::with_capacity(2 * n_per_channel);
    for (&x, &y) in a.iter().zip(&b) {
        out.push(Tagged::new("alpha", x));
        out.push(Tagged::new("beta", y));
    }
    out
}

/// The per-shard stream configuration the stream/federated sessions use.
/// Bootstrap off keeps the proptest battery fast; the bootstrap state's
/// own round-trip is covered by `crates/stream/tests/persist_props.rs`.
fn stream_config() -> StreamConfig {
    StreamConfig {
        block_size: 25,
        refit_every_blocks: 4,
        target_p: 1e-12,
        bootstrap: None,
        ..StreamConfig::default()
    }
}

fn builder(jobs: usize) -> SessionBuilder {
    MbptaConfig {
        block: BlockSpec::Fixed(25),
        ..MbptaConfig::default()
    }
    .session()
    .snapshot_every(100)
    .target_p(1e-12)
    .jobs(jobs)
}

/// Drive `feed` through a session built by `factory`, checkpointing and
/// restoring at `cut` (`None` = uninterrupted); returns every snapshot
/// emitted after the cut plus the merged per-channel outcomes rendered
/// for comparison.
fn run<F>(
    factory: F,
    jobs: usize,
    feed: &[Tagged],
    cut: Option<usize>,
) -> (Vec<SessionSnapshot>, Vec<String>)
where
    F: EngineFactory + Clone,
{
    let mut session = builder(jobs).build_with(factory.clone()).unwrap();
    let cut = cut.unwrap_or(0);
    let mut snaps = Vec::new();
    for (i, tagged) in feed.iter().enumerate() {
        if i == cut && i != 0 {
            let blob = session.checkpoint().expect("checkpoint");
            session = AnalysisSession::restore(factory.clone(), &blob, jobs).expect("restore");
            assert_eq!(session.len(), i);
        }
        if let Some(s) = session.push(tagged.clone()).unwrap() {
            if i >= cut {
                snaps.push(s);
            }
        }
    }
    let merged = session.merge();
    let outcomes = merged
        .channels()
        .iter()
        .map(|cv| format!("{}: {:?} dropped={}", cv.channel, cv.outcome, cv.dropped))
        .collect();
    (snaps, outcomes)
}

/// Redact the sketch-estimated `mean` from a rendered outcome (used only
/// by the cross-shard-count comparison; see the comment there).
fn strip_mean(s: &str) -> String {
    match (s.find("mean: "), s.find(", detail:")) {
        (Some(start), Some(end)) if start < end => format!("{}{}", &s[..start], &s[end..]),
        _ => s.to_string(),
    }
}

proptest! {
    /// Stream-engine sessions: resume at any cut × jobs {1,8} is
    /// bit-identical to uninterrupted.
    #[test]
    fn stream_session_resume_bit_identical(
        cut in 1usize..2_400,
        seed in 0u64..6,
        jobs_sel in 0usize..2,
    ) {
        let jobs = [1usize, 8][jobs_sel];
        let feed = feed(1_200, seed);
        let factory = StreamFactory::new(stream_config()).unwrap();
        let (snaps_u, merged_u) = run(factory.clone(), jobs, &feed, None);
        let (snaps_r, merged_r) = run(factory, jobs, &feed, Some(cut));
        let after_cut: Vec<_> = snaps_u.iter().filter(|s| s.total > cut).cloned().collect();
        prop_assert_eq!(snaps_r, after_cut);
        prop_assert_eq!(merged_r, merged_u);
    }

    /// Batch-engine sessions: resume at any cut × jobs {1,8} is
    /// bit-identical to uninterrupted (the full measurement buffer and
    /// the intermediate-refit bookkeeping both survive).
    #[test]
    fn batch_session_resume_bit_identical(
        cut in 1usize..2_400,
        seed in 0u64..6,
        jobs_sel in 0usize..2,
    ) {
        let jobs = [1usize, 8][jobs_sel];
        let feed = feed(1_200, seed);
        let config = MbptaConfig {
            block: BlockSpec::Fixed(25),
            ..MbptaConfig::default()
        };
        let factory = BatchFactory::new(config, 1e-12).unwrap();
        let (snaps_u, merged_u) = run(factory.clone(), jobs, &feed, None);
        let (snaps_r, merged_r) = run(factory, jobs, &feed, Some(cut));
        let after_cut: Vec<_> = snaps_u.iter().filter(|s| s.total > cut).cloned().collect();
        prop_assert_eq!(snaps_r, after_cut);
        prop_assert_eq!(merged_r, merged_u);
    }

    /// Federated sessions: resume at any cut × shards {1,4} × jobs {1,8}
    /// is bit-identical to uninterrupted — and to every other shard
    /// count, preserving PR 4's shard-count invariance across restarts.
    #[test]
    fn federated_session_resume_bit_identical(
        cut in 1usize..2_400,
        seed in 0u64..4,
        shards_sel in 0usize..2,
        jobs_sel in 0usize..2,
    ) {
        let shards = [1usize, 4][shards_sel];
        let jobs = [1usize, 8][jobs_sel];
        let feed = feed(1_200, seed);
        let config = FederatedConfig::new(stream_config(), shards).balanced_for(1_200);
        let factory = FederatedFactory::new(config).unwrap();
        let (snaps_u, merged_u) = run(factory.clone(), jobs, &feed, None);
        let (snaps_r, merged_r) = run(factory, jobs, &feed, Some(cut));
        // Federated engines emit no intermediate estimates.
        prop_assert!(snaps_u.is_empty() && snaps_r.is_empty());
        prop_assert_eq!(&merged_r, &merged_u);
        // Shard-count invariance survives the restart: the resumed
        // 4-shard report equals the uninterrupted 1-shard report. The
        // sketch *mean* is excluded — summing shard sums re-associates
        // the floating-point addition (last-ulp wiggle, a PR 4
        // property); everything the report prints (pWCET, fit, i.i.d.,
        // high watermark) is exact.
        if shards == 4 {
            let single = FederatedFactory::new(
                FederatedConfig::new(stream_config(), 1).balanced_for(1_200),
            )
            .unwrap();
            let (_, merged_single) = run(single, jobs, &feed, None);
            let strip: fn(&String) -> String = |s| strip_mean(s);
            prop_assert_eq!(
                merged_r.iter().map(strip).collect::<Vec<_>>(),
                merged_single.iter().map(strip).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn quarantined_channel_survives_checkpoint_restart() {
    // Quarantine a channel with a NaN before the cut; the restored
    // session must report the identical channel-scoped error and keep
    // counting drops.
    let factory = StreamFactory::new(stream_config()).unwrap();
    let mut session = builder(0).build_with(factory.clone()).unwrap();
    for &x in campaign(1e5, 900, 3).iter() {
        session.push(Tagged::new("good", x)).unwrap();
    }
    session.push(Tagged::new("bad", f64::NAN)).unwrap();
    session.push(Tagged::new("bad", 100.0)).unwrap(); // dropped
    let blob = session.checkpoint().unwrap();
    let mut restored = AnalysisSession::restore(factory, &blob, 0).unwrap();
    // More drops after the restart.
    restored.push(Tagged::new("bad", 101.0)).unwrap();
    session.push(Tagged::new("bad", 101.0)).unwrap();
    let (a, b) = (session.merge(), restored.merge());
    assert!(a.verdict("good").unwrap().is_ok());
    assert_eq!(a.verdict("good").unwrap(), b.verdict("good").unwrap());
    assert_eq!(a.verdict("bad").unwrap(), b.verdict("bad").unwrap());
    assert_eq!(a.channels()[1].dropped, 2);
    assert_eq!(b.channels()[1].dropped, 2);
}

#[test]
fn early_finished_channel_survives_checkpoint_restart() {
    // With early finish on, a converged channel's verdict is computed
    // and its engine dropped mid-session; the checkpoint carries the
    // stored verdict itself.
    let factory = StreamFactory::new(stream_config()).unwrap();
    let session_builder = || builder(0).early_finish(true);
    let mut session = session_builder().build_with(factory.clone()).unwrap();
    for &x in campaign(1e5, 6_000, 5).iter() {
        session.push(Tagged::new("only", x)).unwrap();
    }
    {
        let ch = session.channel("only").unwrap();
        assert!(ch.finished_early(), "stationary stream converges in 6000");
    }
    let blob = session.checkpoint().unwrap();
    let restored = AnalysisSession::restore(factory, &blob, 0).unwrap();
    let (a, b) = (session.merge(), restored.merge());
    assert_eq!(a.verdict("only").unwrap(), b.verdict("only").unwrap());
}

#[test]
fn restore_refuses_a_checkpoint_from_a_different_engine_family() {
    let stream_factory = StreamFactory::new(stream_config()).unwrap();
    let mut session = builder(0).build_with(stream_factory).unwrap();
    for &x in campaign(1e5, 600, 7).iter() {
        session.push(Tagged::new("only", x)).unwrap();
    }
    let blob = session.checkpoint().unwrap();
    let config = MbptaConfig {
        block: BlockSpec::Fixed(25),
        ..MbptaConfig::default()
    };
    let batch_factory = BatchFactory::new(config, 1e-12).unwrap();
    let err = AnalysisSession::restore(batch_factory, &blob, 0).unwrap_err();
    assert!(matches!(err, proxima::mbpta::MbptaError::Checkpoint { .. }));
    assert!(err.to_string().contains("batch"), "{err}");
}

// ---------------------------------------------------------------------
// Golden fixtures: committed checkpoint bytes that every future build
// must keep decoding (or reject loudly with a version bump). Regenerate
// with `PROXIMA_REGEN_FIXTURES=1 cargo test --test checkpoint`.
// ---------------------------------------------------------------------

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture_bytes(name: &str, current: &[u8]) -> Vec<u8> {
    let path = fixture_path(name);
    if std::env::var_os("PROXIMA_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, current).unwrap();
    }
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "golden fixture {name} unreadable ({e}); regenerate with \
             PROXIMA_REGEN_FIXTURES=1 cargo test --test checkpoint"
        )
    })
}

/// The reference analyzer the analyzer fixture was generated from.
fn golden_analyzer() -> StreamAnalyzer {
    let mut analyzer = StreamAnalyzer::new(StreamConfig {
        block_size: 25,
        refit_every_blocks: 4,
        target_p: 1e-12,
        ..StreamConfig::default() // bootstrap ON: the CI state is format
    })
    .unwrap();
    // 1010 samples: a partial block, live convergence bookkeeping, and a
    // cached snapshot with a bootstrap interval — the fixture covers
    // every field class.
    analyzer.extend(campaign(1e5, 1010, 42)).unwrap();
    analyzer
}

#[test]
fn golden_analyzer_fixture_stays_decodable() {
    let reference = golden_analyzer();
    let current = save_analyzer(&reference);
    let bytes = fixture_bytes("analyzer_v3.bin", &current);
    let decoded = load_analyzer(&bytes).expect("golden analyzer fixture must decode");
    assert_eq!(decoded.len(), 1010);
    assert_eq!(decoded.blocks(), 40);
    assert_eq!(decoded.config().block_size, 25);
    assert_eq!(decoded.maxima(), reference.maxima());
    assert_eq!(decoded.high_watermark(), reference.high_watermark());
    assert_eq!(decoded.last_snapshot(), reference.last_snapshot());
    // The committed bytes are canonical: decode → re-encode reproduces
    // them, and the current encoder still writes exactly those bytes. A
    // failure here means the format changed without a FORMAT_VERSION
    // bump — bump it and regenerate the fixtures instead.
    assert_eq!(save_analyzer(&decoded), bytes);
    assert_eq!(
        current, bytes,
        "checkpoint format drifted without a version bump"
    );
}

#[test]
fn golden_kll_analyzer_fixture_stays_decodable() {
    // Format v3's new byte surface: the `StreamConfig` sketch-kind byte
    // and the kind-tagged KLL sketch record (levels, coin counter, side
    // stats). Same shape as the GK analyzer fixture — 1010 samples, a
    // partial block, bootstrap on — so the two fixtures differ exactly
    // where the sketch selection bites.
    let mut reference = StreamAnalyzer::new(StreamConfig {
        block_size: 25,
        refit_every_blocks: 4,
        target_p: 1e-12,
        sketch: proxima::stream::SketchKind::Kll,
        ..StreamConfig::default()
    })
    .unwrap();
    reference.extend(campaign(1e5, 1010, 42)).unwrap();
    let current = save_analyzer(&reference);
    let bytes = fixture_bytes("analyzer_kll_v3.bin", &current);
    let decoded = load_analyzer(&bytes).expect("golden KLL analyzer fixture must decode");
    assert_eq!(decoded.len(), 1010);
    assert_eq!(
        decoded.config().sketch,
        proxima::stream::SketchKind::Kll,
        "fixture must restore the KLL selection"
    );
    assert_eq!(decoded.sketch(), reference.sketch());
    assert_eq!(decoded.maxima(), reference.maxima());
    assert_eq!(save_analyzer(&decoded), bytes);
    assert_eq!(
        current, bytes,
        "checkpoint format drifted without a version bump"
    );
}

#[test]
fn golden_federated_fixture_stays_decodable() {
    let config = FederatedConfig::new(stream_config(), 3).balanced_for(1500);
    let mut fed = FederatedAnalyzer::new(config).unwrap();
    for x in campaign(1e5, 1500, 43) {
        fed.push(x).unwrap();
    }
    let current = save_federated(&fed);
    let bytes = fixture_bytes("federated_v3.bin", &current);
    let mut decoded = load_federated(&bytes).expect("golden federated fixture must decode");
    assert_eq!(decoded.len(), 1500);
    assert_eq!(decoded.shard_count(), 3);
    assert_eq!(
        decoded.finish().unwrap(),
        fed.finish().unwrap(),
        "fixture fold diverged from the reference"
    );
    assert_eq!(save_federated(&load_federated(&bytes).unwrap()), bytes);
    assert_eq!(
        current, bytes,
        "checkpoint format drifted without a version bump"
    );
}

#[test]
fn golden_session_fixture_stays_decodable() {
    let factory = StreamFactory::new(stream_config()).unwrap();
    let mut session = builder(0).build_with(factory.clone()).unwrap();
    for tagged in feed(700, 44) {
        session.push(tagged).unwrap();
    }
    let current = session.checkpoint().unwrap();
    let bytes = fixture_bytes("session_v3.bin", &current);
    let restored =
        AnalysisSession::restore(factory, &bytes, 0).expect("golden session fixture must restore");
    assert_eq!(restored.len(), 1400);
    assert_eq!(restored.channel_count(), 2);
    let merged_fixture = restored.merge();
    let merged_reference = session.merge();
    for ch in ["alpha", "beta"] {
        assert_eq!(
            merged_fixture.verdict(ch).unwrap(),
            merged_reference.verdict(ch).unwrap()
        );
    }
    assert_eq!(
        current, bytes,
        "checkpoint format drifted without a version bump"
    );
}
