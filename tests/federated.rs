//! Acceptance tests of the federated sharded streaming subsystem (PR 4's
//! tentpole): a session channel backed by N federated shards produces,
//! on the TVCA paths, the same pWCET as the unsharded streaming analyzer
//! — bit-identical at block-aligned shard boundaries, and within the 1%
//! stream-vs-batch bound of the batch pipeline.

use proxima::prelude::*;
use proxima::stream::{SketchKind, StreamConfig};

fn stream_config() -> StreamConfig {
    StreamConfig {
        block_size: 25,
        refit_every_blocks: 4,
        ..StreamConfig::default()
    }
}

const TVCA_PATHS: &[ControlMode] = &[
    ControlMode::Nominal,
    ControlMode::SaturatedX,
    ControlMode::SaturatedY,
    ControlMode::FaultRecovery,
];

#[test]
fn sharded_sessions_agree_with_single_stream_on_every_tvca_path() {
    let runs = 2000;
    for &mode in TVCA_PATHS {
        let times: Vec<f64> =
            TraceReplay::tvca(mode, TvcaConfig::default(), runs, 10_000_000).collect();

        let mut single = StreamAnalyzer::new(stream_config()).expect("config");
        single.extend(times.iter().copied()).expect("clean stream");
        let single_final = single.finish().expect("final");

        // The batch pipeline on the same fixed block is the paper-side
        // reference; the stream-vs-batch bound carries over to shards.
        let batch = Pipeline::new(MbptaConfig {
            block: BlockSpec::Fixed(25),
            ..MbptaConfig::default()
        })
        .analyze(&times)
        .expect("batch analysis");
        let batch_budget = batch.budget_for(1e-12).expect("budget");

        for shards in [1usize, 3, 4] {
            let config = FederatedConfig::new(stream_config(), shards).balanced_for(runs);
            let mut session = MbptaConfig::default()
                .session()
                .build_federated_with(config)
                .expect("valid config");
            {
                let mut channel = session.channel("path").expect("fresh channel");
                for &x in &times {
                    channel.push(x);
                }
            }
            let merged = session.merge();
            let verdict = merged.verdict("path").unwrap().as_ref().expect("analysed");
            let sharded_budget = verdict.budget_for(1e-12).expect("budget");
            // Bit-identical to the unsharded stream…
            assert_eq!(
                verdict.pwcet, single_final.distribution,
                "{mode:?} shards={shards} diverged from the single stream"
            );
            assert_eq!(verdict.summary.high_watermark, single_final.high_watermark);
            assert_eq!(verdict.summary.n, runs);
            // …and within the PR 2 stream-vs-batch bound of the batch
            // pipeline (exact at this fixed block).
            let rel = (sharded_budget / batch_budget - 1.0).abs();
            assert!(rel < 0.01, "{mode:?} shards={shards} rel={rel}");
        }
    }
}

#[test]
fn parallel_shard_ingest_folds_to_the_serial_campaign_verdict() {
    // Each shard replays its own contiguous run range on its own thread
    // with O(1) SplitMix64 seed access — the multi-host campaign shape —
    // and the fold equals the serial single-stream result.
    let runs = 1500;
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(ControlMode::FaultRecovery);

    let config = FederatedConfig::new(stream_config(), 4).balanced_for(runs);
    let mut fed = FederatedAnalyzer::new(config).expect("config");
    fed.ingest_trace(PlatformConfig::mbpta_compliant(), &trace, runs, 10_000_000)
        .expect("parallel ingest");
    let sharded = fed.finish().expect("fold");

    let mut single = StreamAnalyzer::new(stream_config()).expect("config");
    for x in TraceReplay::new(PlatformConfig::mbpta_compliant(), trace, runs, 10_000_000) {
        single.push(x).expect("clean stream");
    }
    let serial = single.finish().expect("final");
    assert_eq!(sharded.pwcet, serial.pwcet);
    assert_eq!(sharded.distribution, serial.distribution);
    assert_eq!(sharded.high_watermark, serial.high_watermark);
    assert_eq!(sharded.n, serial.n);
}

#[test]
fn federated_envelope_matches_streaming_envelope() {
    // A 4-channel federated session and a 4-channel streaming session on
    // the same pooled TVCA campaigns produce the same envelope.
    let runs = 1200;
    let tvca = Tvca::new(TvcaConfig::default());
    let traces: Vec<Vec<Inst>> = TVCA_PATHS.iter().map(|&m| tvca.trace(m)).collect();
    let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant()).with_jobs(2);
    let campaigns = runner.run_many(&traces, runs, 7).expect("pooled campaigns");

    let mut streaming = MbptaConfig::default()
        .session()
        .build_stream_with(stream_config())
        .expect("config");
    for (t, campaign) in campaigns.iter().enumerate() {
        let mut ch = streaming.channel(format!("path{t}")).expect("channel");
        for &x in campaign.times() {
            ch.push(x);
        }
    }
    let streaming = streaming.merge();

    let mut federated = MbptaConfig::default()
        .session()
        .build_federated_with(FederatedConfig::new(stream_config(), 4).balanced_for(runs))
        .expect("config");
    for (t, campaign) in campaigns.iter().enumerate() {
        let mut ch = federated.channel(format!("path{t}")).expect("channel");
        for &x in campaign.times() {
            ch.push(x);
        }
    }
    let federated = federated.merge();

    assert!(streaming.all_ok() && federated.all_ok());
    let (worst_s, budget_s) = streaming.envelope_budget(1e-12).expect("envelope");
    let (worst_f, budget_f) = federated.envelope_budget(1e-12).expect("envelope");
    assert_eq!(worst_s, worst_f);
    assert_eq!(budget_s, budget_f, "sharded envelope diverged");
    assert_eq!(streaming.high_watermark(), federated.high_watermark());
}

#[test]
fn kll_sharded_sessions_agree_with_single_stream_at_every_shard_count() {
    // `--sketch kll` keeps the federated determinism contract: the KLL
    // compaction coins come from a SplitMix64 stream seeded by sketch
    // state (never ambient entropy), merges are deterministic, and the
    // side statistics the report reads are exact — so the folded report
    // is bit-identical to the unsharded KLL stream at every shard count.
    let runs = 2000;
    let kll_config = StreamConfig {
        sketch: SketchKind::Kll,
        ..stream_config()
    };
    let times: Vec<f64> = TraceReplay::tvca(
        ControlMode::Nominal,
        TvcaConfig::default(),
        runs,
        10_000_000,
    )
    .collect();

    let mut single = StreamAnalyzer::new(kll_config.clone()).expect("config");
    single.extend(times.iter().copied()).expect("clean stream");
    let single_final = single.finish().expect("final");

    for shards in [1usize, 2, 4] {
        let config = FederatedConfig::new(kll_config.clone(), shards).balanced_for(runs);
        let mut session = MbptaConfig::default()
            .session()
            .build_federated_with(config)
            .expect("valid config");
        {
            let mut channel = session.channel("path").expect("fresh channel");
            for &x in &times {
                channel.push(x);
            }
        }
        let merged = session.merge();
        let verdict = merged.verdict("path").unwrap().as_ref().expect("analysed");
        assert_eq!(
            verdict.pwcet, single_final.distribution,
            "shards={shards} diverged from the single KLL stream"
        );
        assert_eq!(verdict.summary.high_watermark, single_final.high_watermark);
        assert_eq!(verdict.summary.n, runs);
    }
}
