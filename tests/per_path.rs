//! Per-path MBPTA over the four TVCA control paths.

use proxima::mbpta::paths::PerPathAnalysis;
use proxima::prelude::*;

fn per_path_campaigns(runs: usize) -> Vec<(String, Vec<f64>)> {
    let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
    let tvca = Tvca::new(TvcaConfig::default());
    tvca.paths()
        .into_iter()
        .enumerate()
        .map(|(i, mode)| {
            let trace = tvca.trace(mode);
            // Base seeds verified to pass the 5%-level gate (sequential
            // seeds near 1.0e6 are a known bad pocket of the seeder).
            let base = 10_000_000 + (i as u64) * 137_911;
            let campaign = Campaign::measure(&mut platform, &trace, runs, base).expect("campaign");
            (mode.to_string(), campaign.times().to_vec())
        })
        .collect()
}

#[test]
fn all_paths_analysable_and_fault_is_worst() {
    let campaigns = per_path_campaigns(500);
    let analysis = PerPathAnalysis::run(&campaigns, &MbptaConfig::default()).expect("per-path");
    assert_eq!(analysis.paths().len(), 4);

    let (worst_label, worst_budget) = analysis.worst_path_budget(1e-12).expect("budget");
    // The fault-recovery path executes strictly more code.
    assert_eq!(worst_label, "fault-recovery");
    for path in analysis.paths() {
        assert!(worst_budget >= path.report.budget_for(1e-12).expect("budget"));
    }
}

#[test]
fn envelope_dominates_every_observation() {
    let campaigns = per_path_campaigns(400);
    let analysis = PerPathAnalysis::run(&campaigns, &MbptaConfig::default()).expect("per-path");
    let (_, envelope_at_1e9) = analysis.worst_path_budget(1e-9).expect("budget");
    let hwm = analysis.high_watermark();
    assert!(
        envelope_at_1e9 >= hwm,
        "envelope {envelope_at_1e9:.0} must dominate the program hwm {hwm:.0}"
    );
}

#[test]
fn saturated_paths_cost_more_than_nominal() {
    // The forced-worst FPU on the RAND platform makes the divide-heavy
    // saturated paths strictly longer on average.
    let campaigns = per_path_campaigns(200);
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let nominal = mean(&campaigns[0].1);
    let sat_x = mean(&campaigns[1].1);
    let fault = mean(&campaigns[3].1);
    assert!(sat_x > nominal);
    assert!(fault > sat_x);
}
