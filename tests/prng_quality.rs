//! Ablation A6 as a test: MBPTA needs a good PRNG behind the hardware
//! randomization.

use proxima::prelude::*;

fn campaign_with_prng(kind: PrngKind, runs: usize) -> Vec<f64> {
    let mut config = PlatformConfig::mbpta_compliant();
    config.prng = kind;
    let mut platform = Platform::new(config);
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(ControlMode::Nominal);
    platform
        .campaign(&trace, runs, 0)
        .into_iter()
        .map(|o| o.cycles as f64)
        .collect()
}

#[test]
fn good_generators_agree_on_the_distribution() {
    // MWC and xorshift drive the same hardware: the execution-time
    // distributions they produce must be statistically indistinguishable.
    let mwc = campaign_with_prng(PrngKind::Mwc, 400);
    let xs = campaign_with_prng(PrngKind::XorShift, 400);
    let r = proxima::stats::tests::ks_two_sample(&mwc, &xs).expect("ks");
    assert!(
        r.passes(0.01),
        "two healthy PRNGs should give the same distribution (p={})",
        r.p_value
    );
}

#[test]
fn weak_generator_reduces_effective_randomization() {
    // The 16-bit LCG explores far fewer distinct timings than the MWC: its
    // placement entropy is bounded by its tiny state.
    let strong: std::collections::HashSet<u64> = campaign_with_prng(PrngKind::Mwc, 300)
        .into_iter()
        .map(|t| t as u64)
        .collect();
    let weak: std::collections::HashSet<u64> = campaign_with_prng(PrngKind::WeakLcg, 300)
        .into_iter()
        .map(|t| t as u64)
        .collect();
    assert!(
        weak.len() * 2 < strong.len() * 3, // weak < 1.5x-margin of strong
        "weak PRNG should not out-diversify the strong one (weak {} vs strong {})",
        weak.len(),
        strong.len()
    );
}

#[test]
fn health_battery_separates_the_generators() {
    use proxima::prng::health::run_battery;
    let mut strong = Mwc64::new(1);
    assert!(run_battery(&mut strong, 2048).all_passed());
    let mut weak = proxima::prng::WeakLcg::new(1);
    assert!(!run_battery(&mut weak, 2048).all_passed());
}
