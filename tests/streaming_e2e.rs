//! End-to-end acceptance of the streaming MBPTA subsystem, through the
//! facade: on a 10k-sample trace the final streamed snapshot at p = 1e-12
//! agrees with the batch `analyze()` to within 1%, with memory bounded to
//! the sketch + monitor window + block-maxima buffer.

// Deliberately exercises the deprecated pre-session API: these tests
// double as regression coverage for the `analyze`/`PipelineStreamExt`
// shims, which must stay behaviourally identical to the session path.
#![allow(deprecated)]

use proxima::prelude::*;
use proxima::stream::StreamConfig;
use rand::{Rng, SeedableRng};

fn campaign(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
        .collect()
}

#[test]
fn streaming_10k_within_one_percent_of_batch_with_bounded_memory() {
    const N: usize = 10_000;
    const BLOCK: usize = 50;
    let times = campaign(N, 3);

    let batch = analyze(
        &times,
        &MbptaConfig {
            block: BlockSpec::Fixed(BLOCK),
            ..MbptaConfig::default()
        },
    )
    .expect("batch analysis accepts the campaign");
    let batch_budget = batch.budget_for(1e-12).expect("batch budget");

    let mut analyzer = Pipeline::default()
        .stream_with(StreamConfig {
            block_size: BLOCK,
            refit_every_blocks: 5,
            ..StreamConfig::default()
        })
        .expect("stream config");
    let snapshots = analyzer
        .extend(times.iter().copied())
        .expect("clean ingest");
    assert!(!snapshots.is_empty(), "snapshots flow during ingestion");
    let last = analyzer.finish().expect("final snapshot");

    // Acceptance: within 1% of batch (same maxima, so in fact exact).
    let rel = (last.pwcet / batch_budget - 1.0).abs();
    assert!(
        rel < 0.01,
        "streamed {} vs batch {batch_budget}: rel {rel}",
        last.pwcet
    );

    // Memory bound: sketch is sublinear, monitor is a fixed window, and
    // the maxima buffer is n/B — never the raw 10k vector.
    assert!(
        analyzer.sketch().tuples() < N / 4,
        "sketch holds {} tuples",
        analyzer.sketch().tuples()
    );
    assert!(analyzer.monitor().len() <= analyzer.config().monitor_window);
    assert_eq!(analyzer.blocks(), N / BLOCK);

    // The exact side channels agree with the raw data.
    let hwm = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(last.high_watermark, hwm);
    assert_eq!(last.n, N);

    // The stationary campaign converged well before the end.
    assert!(analyzer.converged(), "10k stationary samples converge");
    assert!(analyzer.converged_at().unwrap() < N);
}

#[test]
fn streamed_simulator_replay_matches_batch_campaign_pipeline() {
    // TraceReplay uses the CampaignRunner seed stream, so streaming the
    // simulator and batch-measuring it see identical measurements.
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(ControlMode::Nominal);
    let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant()).with_jobs(2);
    let campaign = runner.run(&trace, 400, 42).expect("campaign");

    let streamed: Vec<f64> =
        TraceReplay::new(PlatformConfig::mbpta_compliant(), trace, 400, 42).collect();
    assert_eq!(campaign.times(), &streamed[..]);
}

#[test]
fn snapshot_stream_reports_suspect_iid_on_drifting_source() {
    // A drifting stream must keep flowing but carry a suspect iid flag.
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let times: Vec<f64> = (0..3000)
        .map(|i| 1e5 + i as f64 * 40.0 + 100.0 * rng.gen::<f64>())
        .collect();
    let mut analyzer = Pipeline::default()
        .stream_with(StreamConfig {
            block_size: 25,
            refit_every_blocks: 4,
            ..StreamConfig::default()
        })
        .expect("stream config");
    let snaps = analyzer.extend(times).expect("ingest");
    assert!(!snaps.is_empty());
    assert!(
        snaps
            .iter()
            .any(|s| s.iid_status.status == proxima::stream::IidStatus::Suspect),
        "drift must trip the rolling iid monitor"
    );
}
