//! Property tests for the sharded parallel campaign engine: the
//! measurement vector must be a pure function of `(master seed, runs)`,
//! bit-identical for every `--jobs` setting.

use proptest::prelude::*;
use proxima::prelude::*;
use proxima::sim::Inst;

fn trace(len: usize) -> Vec<Inst> {
    (0..len)
        .map(|i| {
            Inst::load(
                0x100 + 4 * (i as u64 % 16),
                0x10_0000 + 4096 * (i as u64 % 48),
            )
        })
        .collect()
}

proptest! {
    /// jobs=1 and jobs=8 produce bit-identical measurement vectors for any
    /// master seed and campaign size.
    #[test]
    fn jobs_1_and_8_bit_identical(
        master_seed in any::<u64>(),
        runs in 50usize..120,
    ) {
        let prog = trace(150);
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant());
        let serial = runner.clone().with_jobs(1).run(&prog, runs, master_seed).unwrap();
        let parallel = runner.with_jobs(8).run(&prog, runs, master_seed).unwrap();
        prop_assert_eq!(serial.times(), parallel.times());
    }

    /// Oddball job counts that do not divide the run count evenly still
    /// merge to the same vector.
    #[test]
    fn ragged_shards_still_identical(
        master_seed in any::<u64>(),
        runs in 30usize..80,
        jobs in 2usize..13,
    ) {
        let prog = trace(120);
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant());
        let serial = runner.clone().with_jobs(1).run(&prog, runs, master_seed).unwrap();
        let parallel = runner.with_jobs(jobs).run(&prog, runs, master_seed).unwrap();
        prop_assert_eq!(serial.times(), parallel.times());
    }

    /// The campaign is a pure function of the master seed: rerunning with
    /// the same seed reproduces it, a different seed changes it.
    #[test]
    fn campaign_pure_in_master_seed(master_seed in any::<u64>()) {
        // A working set above DL1 capacity, so placement randomization
        // makes the timing genuinely seed-sensitive.
        let prog: Vec<Inst> = (0..1500)
            .map(|i| Inst::load(0x100 + 4 * (i % 64), 0x10_0000 + 4096 * (i % 600)))
            .collect();
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant()).with_jobs(4);
        let a = runner.run(&prog, 30, master_seed).unwrap();
        let b = runner.run(&prog, 30, master_seed).unwrap();
        prop_assert_eq!(a.times(), b.times());
        let c = runner.run(&prog, 30, master_seed.wrapping_add(1)).unwrap();
        prop_assert!(a.times() != c.times(), "distinct seeds should perturb the campaign");
    }
}
