//! Acceptance tests of the multi-channel `AnalysisSession` API (PR 3's
//! tentpole): a session ingesting a 3-channel tagged feed produces, per
//! channel, verdicts **bit-identical** to running the batch pipeline /
//! `StreamAnalyzer` on each channel's measurements alone — at every
//! `jobs` setting and under any interleaving — and the deprecated shims
//! stay equivalent to the session path.
//!
//! Deliberately exercises the deprecated pre-session API in the shim
//! equivalence tests.
#![allow(deprecated)]

use proptest::prelude::*;
use proxima::prelude::*;
use proxima::stream::StreamConfig;
use rand::{Rng, SeedableRng};

fn campaign(base: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| base + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 80.0)
        .collect()
}

/// Three channels with distinct bases, seeds chosen to pass the 5%-level
/// i.i.d. gate.
fn three_channels() -> Vec<(&'static str, Vec<f64>)> {
    vec![
        ("path/nominal", campaign(1.0e5, 1200, 4)),
        ("core1/saturated", campaign(1.1e5, 1200, 20)),
        ("tenant/fault", campaign(1.3e5, 1200, 40)),
    ]
}

/// Round-robin interleave the channels into one tagged feed.
fn interleave(channels: &[(&'static str, Vec<f64>)]) -> Vec<Tagged> {
    let n = channels.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    let mut feed = Vec::new();
    for i in 0..n {
        for (name, times) in channels {
            if let Some(&x) = times.get(i) {
                feed.push(Tagged::new(*name, x));
            }
        }
    }
    feed
}

#[test]
fn batch_session_bit_identical_to_bare_analyze_at_every_jobs() {
    let channels = three_channels();
    let feed = interleave(&channels);
    let config = MbptaConfig::default();
    for jobs in [1, 2, 3, 8] {
        let mut session = config
            .clone()
            .session()
            .jobs(jobs)
            .build_batch()
            .expect("valid config");
        session.extend(feed.iter().cloned()).expect("clean feed");
        let merged = session.merge();
        assert!(merged.all_ok());
        for (name, times) in &channels {
            let verdict = merged
                .verdict(name)
                .expect("channel present")
                .as_ref()
                .unwrap();
            let report = analyze(times, &config).expect("bare analysis");
            // Bit-identical: the full report round-trips through the
            // verdict, pWCET parameters included.
            assert_eq!(
                verdict.clone().into_report().unwrap(),
                report,
                "jobs={jobs} channel={name} diverged from bare analyze()"
            );
            assert_eq!(
                verdict.budget_for(1e-12).unwrap(),
                report.budget_for(1e-12).unwrap()
            );
        }
    }
}

#[test]
fn stream_session_bit_identical_to_bare_stream_analyzer_at_every_jobs() {
    let channels = three_channels();
    let feed = interleave(&channels);
    let stream_config = StreamConfig {
        block_size: 25,
        refit_every_blocks: 4,
        ..StreamConfig::default()
    };
    for jobs in [1, 2, 8] {
        let mut session = MbptaConfig::default()
            .session()
            .jobs(jobs)
            .build_stream_with(stream_config.clone())
            .expect("valid config");
        session.extend(feed.iter().cloned()).expect("clean feed");
        let merged = session.merge();
        assert!(merged.all_ok());
        for (name, times) in &channels {
            let verdict = merged
                .verdict(name)
                .expect("channel present")
                .as_ref()
                .unwrap();
            let mut bare = StreamAnalyzer::new(stream_config.clone()).unwrap();
            bare.extend(times.iter().copied()).unwrap();
            let final_snap = bare.finish().unwrap();
            assert_eq!(
                verdict.pwcet, final_snap.distribution,
                "jobs={jobs} channel={name} pWCET diverged from bare StreamAnalyzer"
            );
            assert_eq!(
                verdict.budget_for(1e-12).unwrap(),
                final_snap.distribution.budget_for(1e-12).unwrap()
            );
            assert_eq!(verdict.fit.gumbel, *final_snap.distribution.tail());
            assert_eq!(verdict.summary.n, times.len());
            assert_eq!(verdict.summary.high_watermark, final_snap.high_watermark);
            assert_eq!(verdict.provenance.converged, Some(final_snap.converged));
        }
    }
}

#[test]
fn adversarial_interleavings_yield_identical_verdicts() {
    // Three very different interleavings of the same two feeds: strict
    // round-robin, sequential (all of a then all of b), and bursty
    // (prng-driven bursts of 1..8).
    let a = campaign(1.0e5, 900, 2);
    let b = campaign(1.25e5, 900, 21);

    let round_robin: Vec<Tagged> = interleave(&[("a", a.clone()), ("b", b.clone())]);
    let sequential: Vec<Tagged> = a
        .iter()
        .map(|&x| Tagged::new("a", x))
        .chain(b.iter().map(|&y| Tagged::new("b", y)))
        .collect();
    let bursty: Vec<Tagged> = {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let (mut ia, mut ib) = (0usize, 0usize);
        let mut feed = Vec::new();
        while ia < a.len() || ib < b.len() {
            let burst = 1 + (rng.gen::<f64>() * 7.0) as usize;
            let pick_a = ib >= b.len() || (ia < a.len() && rng.gen::<f64>() < 0.5);
            for _ in 0..burst {
                if pick_a && ia < a.len() {
                    feed.push(Tagged::new("a", a[ia]));
                    ia += 1;
                } else if ib < b.len() {
                    feed.push(Tagged::new("b", b[ib]));
                    ib += 1;
                }
            }
        }
        feed
    };

    let run = |feed: &[Tagged]| {
        let mut session = MbptaConfig::default()
            .session()
            .build_stream_with(StreamConfig {
                block_size: 25,
                refit_every_blocks: 4,
                ..StreamConfig::default()
            })
            .unwrap();
        session.extend(feed.iter().cloned()).unwrap();
        session.merge()
    };
    let rr = run(&round_robin);
    let seq = run(&sequential);
    let burst = run(&bursty);
    for ch in ["a", "b"] {
        let v_rr = rr.verdict(ch).unwrap().as_ref().unwrap();
        let v_seq = seq.verdict(ch).unwrap().as_ref().unwrap();
        let v_burst = burst.verdict(ch).unwrap().as_ref().unwrap();
        assert_eq!(v_rr, v_seq, "channel {ch}: round-robin vs sequential");
        assert_eq!(v_rr, v_burst, "channel {ch}: round-robin vs bursty");
    }
}

#[test]
fn deprecated_analyze_shim_equals_session_and_pipeline() {
    // Seed chosen to pass the 5%-level i.i.d. gate (fixed seeds keep CI
    // stable against the gate's 5% false-rejection rate).
    let times = campaign(1e5, 1500, 1);
    let config = MbptaConfig::default();
    let shim = analyze(&times, &config).expect("shim analysis");
    let object = Pipeline::new(config.clone())
        .analyze(&times)
        .expect("pipeline");
    let verdict = config.clone().session().analyze(&times).expect("session");
    assert_eq!(shim, object);
    assert_eq!(verdict.into_report().unwrap(), shim);
    // Error semantics survive the shim: the session unwraps its channel
    // scope, so callers still match on the original variants.
    let constant = vec![500.0; 600];
    assert!(matches!(
        analyze(&constant, &config),
        Err(proxima::mbpta::MbptaError::Stats(_))
    ));
    let short = campaign(1e5, 50, 5);
    assert!(matches!(
        analyze(&short, &config),
        Err(proxima::mbpta::MbptaError::CampaignTooSmall { .. })
    ));
}

#[test]
fn deprecated_stream_ext_shim_equals_stream_session() {
    let times = campaign(1e5, 3000, 6);
    let stream_config = StreamConfig {
        block_size: 25,
        refit_every_blocks: 4,
        ..StreamConfig::default()
    };
    // Old way: Pipeline::stream_with.
    let mut old = Pipeline::default()
        .stream_with(stream_config.clone())
        .expect("shim analyzer");
    old.extend(times.iter().copied()).unwrap();
    let old_final = old.finish().unwrap();
    // New way: single-channel streaming session.
    let mut session = MbptaConfig::default()
        .session()
        .build_stream_with(stream_config)
        .unwrap();
    for &x in &times {
        session.push(Tagged::new("only", x)).unwrap();
    }
    let merged = session.merge();
    let verdict = merged.verdict("only").unwrap().as_ref().unwrap();
    assert_eq!(verdict.pwcet, old_final.distribution);
    assert_eq!(verdict.summary.high_watermark, old_final.high_watermark);
}

#[test]
fn pooled_measurement_feeds_session_like_standalone_campaigns() {
    // `run_many` (one thread pool for all paths) + session demux equals
    // measuring and analysing each path separately.
    let tvca = Tvca::new(TvcaConfig::default());
    let modes = [ControlMode::Nominal, ControlMode::FaultRecovery];
    let traces: Vec<Vec<Inst>> = modes.iter().map(|m| tvca.trace(*m)).collect();
    let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant()).with_jobs(2);
    let pooled = runner.run_many(&traces, 600, 11).expect("pooled campaigns");

    let config = MbptaConfig {
        min_runs: 100,
        ..MbptaConfig::default()
    };
    let mut session = config.clone().session().build_batch().unwrap();
    for (t, campaign) in pooled.iter().enumerate() {
        let mut ch = session.channel(format!("path{t}")).unwrap();
        for &x in campaign.times() {
            ch.push(x);
        }
    }
    let merged = session.merge();
    assert!(merged.all_ok());
    for (t, campaign) in pooled.iter().enumerate() {
        let verdict = merged
            .verdict(&format!("path{t}"))
            .unwrap()
            .as_ref()
            .unwrap();
        let standalone = Pipeline::new(config.clone())
            .analyze(campaign.times())
            .expect("standalone analysis");
        assert_eq!(verdict.clone().into_report().unwrap(), standalone);
    }
}

proptest! {
    /// A single-channel batch session is bit-identical to the bare batch
    /// pipeline for arbitrary (analysable or not) campaigns.
    #[test]
    fn prop_single_channel_session_equals_bare_analyze(
        seed in 0u64..200,
        n in 300usize..900,
        base in 1e4f64..1e6,
    ) {
        let times = campaign(base, n, seed);
        let config = MbptaConfig::default();
        let session_outcome = config.clone().session().analyze(&times);
        let bare_outcome = analyze(&times, &config);
        match (session_outcome, bare_outcome) {
            (Ok(verdict), Ok(report)) => {
                prop_assert_eq!(verdict.into_report().unwrap(), report);
            }
            (Err(se), Err(be)) => prop_assert_eq!(se, be),
            (s, b) => prop_assert!(
                false,
                "outcomes diverged: session={s:?} bare={b:?}"
            ),
        }
    }

    /// Any deterministic interleaving of two channels yields the same
    /// per-channel verdicts as sequential ingestion.
    #[test]
    fn prop_interleaving_invariance(
        seed in 0u64..100,
        pattern in prop::collection::vec(any::<bool>(), 32..128),
    ) {
        let a = campaign(1.0e5, 700, seed.wrapping_mul(2).wrapping_add(4));
        let b = campaign(1.2e5, 700, seed.wrapping_mul(2).wrapping_add(104));
        // Build an interleaving from the boolean pattern (cycled).
        let mut feed = Vec::new();
        let (mut ia, mut ib) = (0usize, 0usize);
        let mut k = 0usize;
        while ia < a.len() || ib < b.len() {
            let pick_a = ia < a.len() && (ib >= b.len() || pattern[k % pattern.len()]);
            if pick_a {
                feed.push(Tagged::new("a", a[ia]));
                ia += 1;
            } else {
                feed.push(Tagged::new("b", b[ib]));
                ib += 1;
            }
            k += 1;
        }
        let run = |feed: &[Tagged]| {
            // Snapshots off: the property is about verdicts, and skipping
            // the scheduler keeps 64 proptest cases cheap.
            let mut session = MbptaConfig::default()
                .session()
                .snapshot_every(0)
                .build_batch()
                .unwrap();
            session.extend(feed.iter().cloned()).unwrap();
            session.merge()
        };
        let sequential: Vec<Tagged> = a
            .iter()
            .map(|&x| Tagged::new("a", x))
            .chain(b.iter().map(|&y| Tagged::new("b", y)))
            .collect();
        let shuffled = run(&feed);
        let ordered = run(&sequential);
        for ch in ["a", "b"] {
            let vs = shuffled.verdict(ch).unwrap().as_ref();
            let vo = ordered.verdict(ch).unwrap().as_ref();
            match (vs, vo) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(x), Err(y)) => prop_assert_eq!(x, y),
                _ => prop_assert!(false, "channel {} outcome shape diverged", ch),
            }
        }
    }
}
