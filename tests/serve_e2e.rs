//! End-to-end battery for the framed-TCP analysis service (`mbpta
//! serve` / `proxima-serve`).
//!
//! What must hold, per the service's contract:
//!
//! * **Soak**: ≥200 concurrent client connections interleaving
//!   INGEST / SNAPSHOT / STATS / MERGE frames leave the server with
//!   exactly the expected deterministic counters (no wall-clock
//!   assertions), bounded cache occupancy, and per-channel verdicts
//!   **bit-identical** to an offline [`AnalysisSession`] replay of the
//!   same per-channel feeds.
//! * **Isolation**: hostile bytes on one connection close only that
//!   connection; a concurrently connected well-behaved client is
//!   unaffected, and the damage is visible in `protocol_errors`.
//! * **Sealed merges**: MERGE accepts only sealed federated blobs, and
//!   the adopted channel's verdict matches the `--shards N` in-process
//!   path bit-for-bit on every analysis field (only the engine
//!   provenance label may differ).
//! * **Durability**: shutdown → resume is bit-identical in process,
//!   and the real binary survives an injected crash mid-campaign, with
//!   the resumed + resent feed verdict equal to an uninterrupted run.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;

use proxima::mbpta::engine::Engine;
use proxima::prelude::*;
use proxima::serve::frame::{read_frame, write_frame, Request};
use proxima::serve::{Response, ResumeOptions, ServeClient, ServeConfig, Server};

/// The per-channel streaming configuration every session in this file
/// uses (server-side and offline replays alike — `from_federated_blob`
/// rejects a mismatch). Bootstrap off keeps the battery fast on the
/// single-core CI runner.
fn stream_config() -> StreamConfig {
    StreamConfig {
        block_size: 25,
        target_p: 1e-12,
        bootstrap: None,
        ..StreamConfig::default()
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        stream: stream_config(),
        snapshot_every: 500,
        cache_capacity: 32,
        ..ServeConfig::default()
    }
}

/// An offline session built exactly the way [`Server::bind`] builds the
/// served one: the replay reference for bit-identity assertions.
fn offline_session(config: &ServeConfig) -> AnalysisSession<proxima::stream::StreamFactory> {
    MbptaConfig {
        block: BlockSpec::Fixed(config.stream.block_size),
        ..MbptaConfig::default()
    }
    .session()
    .snapshot_every(config.snapshot_every)
    .target_p(config.stream.target_p)
    .build_stream_with(config.stream.clone())
    .expect("offline session")
}

/// Deterministic per-channel feed (no clock, no OS randomness).
fn feed(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            1000.0 + 200.0 * ((z >> 11) as f64 / (1u64 << 53) as f64)
        })
        .collect()
}

/// A sealed federated blob over `values`, folded from `shards` shards.
fn sealed_blob(values: &[f64], shards: usize) -> Vec<u8> {
    let mut fed = FederatedAnalyzer::new(FederatedConfig::new(stream_config(), shards))
        .expect("federated analyzer");
    fed.push_batch(values).expect("shard ingest");
    save_federated(&fed)
}

/// Connect with a few retries: under the soak the listener's accept
/// backlog can briefly fill while 200+ peers arrive at once.
fn connect(addr: SocketAddr) -> ServeClient {
    for _ in 0..50 {
        if let Ok(client) = ServeClient::connect(addr) {
            return client;
        }
        thread::yield_now();
    }
    ServeClient::connect(addr).expect("connect after retries")
}

/// The wire verdicts as a name → verdict map (order across channels is
/// registration order, which is racy under concurrent ingest — compare
/// by name, never by position).
type WireVerdicts = (
    Vec<(String, Result<Verdict, String>)>,
    Result<(String, f64), String>,
);

fn verdict_map(response: Response) -> WireVerdicts {
    match response {
        Response::Verdicts {
            channels, envelope, ..
        } => (channels, envelope),
        other => panic!("unexpected response {other:?}"),
    }
}

/// Assert two verdicts agree on every analysis field that is a pure
/// function of the channel's feed: sample size, high watermark, i.i.d.
/// evidence and the fitted tail probed at several cutoffs — all
/// compared as exact bits. (The provenance label is allowed to differ:
/// a server-adopted shard fold reports the stream engine while the
/// `--shards N` in-process path reports the federated one.)
fn assert_same_analysis(name: &str, got: &Verdict, want: &Verdict) {
    assert_eq!(got.provenance.n, want.provenance.n, "channel {name}: n");
    assert_eq!(
        got.high_watermark().to_bits(),
        want.high_watermark().to_bits(),
        "channel {name}: high watermark bits"
    );
    assert_eq!(got.iid.label(), want.iid.label(), "channel {name}: iid");
    for p in [1e-9, 1e-12, 1e-15] {
        let got_budget = got.budget_for(p).expect("budget").to_bits();
        let want_budget = want.budget_for(p).expect("budget").to_bits();
        assert_eq!(
            got_budget, want_budget,
            "channel {name}: budget bits at {p:e}"
        );
    }
}

const INGEST_CLIENTS: usize = 200;
const MERGE_CLIENTS: usize = 8;
const PER_CHANNEL: usize = 550;
const PER_SHARD_CHANNEL: usize = 600;

/// One soak round at `workers` analysis workers: ≥200 concurrent
/// connections interleaving INGEST, SNAPSHOT, STATS, VERDICT and MERGE,
/// with the deterministic counters balanced exactly afterwards. Returns
/// the final envelope verdict for cross-run diffing.
fn run_soak(workers: usize, blobs: &[Vec<u8>]) -> WireVerdicts {
    let config = ServeConfig {
        workers,
        ..serve_config()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    thread::scope(|s| {
        for i in 0..INGEST_CLIENTS {
            s.spawn(move || {
                let mut client = connect(addr);
                let name = format!("ch-{i:03}");
                let values = feed(i as u64, PER_CHANNEL);
                let (first, second) = values.split_at(PER_CHANNEL / 2);
                let (len1, _, _) = client.ingest(&name, first).expect("ingest");
                assert_eq!(len1 as usize, first.len());
                // Interleave queries on the same connection mid-feed.
                let _ = client.snapshot(&name).expect("snapshot");
                if i % 25 == 0 {
                    let (wire, _) =
                        verdict_map(client.verdict(1e-12, Some(&name)).expect("verdict"));
                    assert_eq!(wire[0].0, name);
                }
                let stats = client.stats().expect("stats");
                assert!(stats.cache_len <= stats.cache_capacity);
                let (len2, total, _) = client.ingest(&name, second).expect("ingest");
                assert_eq!(len2 as usize, values.len());
                assert!(total >= len2);
            });
        }
        for (i, blob) in blobs.iter().enumerate() {
            s.spawn(move || {
                let mut client = connect(addr);
                let name = format!("fed-{i}");
                let (channel_len, _) = client.merge(&name, blob).expect("merge");
                assert_eq!(channel_len as usize, PER_SHARD_CHANNEL);
            });
        }
    });

    // Deterministic counter balance: every measurement accounted for,
    // every frame counted, the cache within its bound — no wall clock.
    let mut client = connect(addr);
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.total as usize,
        INGEST_CLIENTS * PER_CHANNEL + MERGE_CLIENTS * PER_SHARD_CHANNEL
    );
    assert_eq!(stats.channels as usize, INGEST_CLIENTS + MERGE_CLIENTS);
    assert_eq!(stats.frames_ingest as usize, 2 * INGEST_CLIENTS);
    assert_eq!(stats.frames_snapshot as usize, INGEST_CLIENTS);
    assert_eq!(stats.frames_verdict as usize, INGEST_CLIENTS.div_ceil(25));
    assert_eq!(stats.frames_merge as usize, MERGE_CLIENTS);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.workers as usize, workers);
    assert_eq!(stats.shards.len(), workers);
    assert_eq!(
        stats.shards.iter().map(|s| s.total).sum::<u64>(),
        stats.total,
        "every measurement lands on exactly one worker"
    );
    assert!(stats.cache_len <= stats.cache_capacity);

    let (wire, wire_envelope) = verdict_map(client.verdict(1e-12, None).expect("verdict"));
    assert_eq!(wire.len(), INGEST_CLIENTS + MERGE_CLIENTS);
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
    (wire, wire_envelope)
}

/// The soak at `--workers 1` and `--workers 4`: both runs' per-channel
/// verdicts must be bit-identical to an offline [`AnalysisSession`]
/// replay of the same per-channel feeds — and thereby to each other.
#[test]
fn soak_200_concurrent_clients_bit_identical_to_offline_replay_at_any_worker_count() {
    // Shard blobs are folded before the soak starts — shipping state,
    // not measurements, is the point of MERGE.
    let blobs: Vec<Vec<u8>> = (0..MERGE_CLIENTS)
        .map(|i| sealed_blob(&feed(10_000 + i as u64, PER_SHARD_CHANNEL), 1 + i % 3))
        .collect();

    // Offline replay of the same per-channel feeds (channels are
    // independent engines, so cross-channel arrival order is
    // irrelevant — per-channel order is what must match, and each
    // channel had exactly one writer).
    let mut offline = offline_session(&serve_config());
    for i in 0..INGEST_CLIENTS {
        offline
            .push_batch(format!("ch-{i:03}").as_str(), &feed(i as u64, PER_CHANNEL))
            .expect("offline ingest");
    }
    for (i, blob) in blobs.iter().enumerate() {
        let engine = proxima::stream::StreamEngine::from_federated_blob(blob, &stream_config())
            .expect("unseal blob");
        offline
            .adopt_channel(
                format!("fed-{i}").as_str(),
                &engine.save_state().expect("save state"),
            )
            .expect("adopt");
    }
    let merged = offline.merge();
    let (_, want_budget) = merged.envelope_budget(1e-12).expect("offline envelope");

    for workers in [1usize, 4] {
        let (wire, wire_envelope) = run_soak(workers, &blobs);
        for (name, outcome) in &wire {
            let want = merged
                .verdict(name)
                .unwrap_or_else(|| panic!("offline replay missing channel {name}"));
            match (outcome, want) {
                (Ok(got), Ok(want)) => assert_same_analysis(name, got, want),
                (Err(got), Err(want)) => assert_eq!(got, &want.to_string(), "channel {name}"),
                (got, want) => panic!("channel {name}: wire {got:?} vs offline {want:?}"),
            }
        }
        let (_, got_budget) = wire_envelope.expect("wire envelope");
        assert_eq!(
            got_budget.to_bits(),
            want_budget.to_bits(),
            "envelope bits at {workers} workers"
        );
    }
}

/// Hostile bytes on one connection must not poison the others: the bad
/// connection is closed (after a best-effort ERROR frame), the damage
/// is counted, and a concurrent well-behaved client keeps working.
#[test]
fn hostile_connections_poison_only_themselves() {
    let server = Server::bind("127.0.0.1:0", serve_config()).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut good = ServeClient::connect(addr).expect("connect");
    good.ingest("good", &feed(1, 600)).expect("ingest");

    // 1. Garbage that is not even a frame header.
    {
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
        raw.flush().expect("flush");
        let mut sink = Vec::new();
        // The server answers with at most one best-effort ERROR frame,
        // then closes; reading to EOF proves the close.
        let _ = raw.read_to_end(&mut sink);
    }

    // 2. A syntactically valid frame whose checksum lies.
    {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Request::Stats.encode()).expect("encode");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        raw.write_all(&bytes).expect("write");
        raw.flush().expect("flush");
        let mut sink = Vec::new();
        let _ = raw.read_to_end(&mut sink);
    }

    // 3. A well-framed, checksum-valid payload that decodes to nothing:
    //    the server answers ERROR and KEEPS the connection (the frame
    //    layer proved the peer is speaking the protocol).
    {
        let stream = TcpStream::connect(addr).expect("connect raw");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        write_frame(&mut writer, &[0xEE, 0xEE]).expect("write");
        writer.flush().expect("flush");
        let payload = read_frame(&mut reader).expect("read").expect("open");
        assert!(matches!(
            Response::decode(&payload).expect("decode"),
            Response::Error { .. }
        ));
        // Same connection, now a valid request: still served.
        write_frame(&mut writer, &Request::Stats.encode()).expect("write");
        writer.flush().expect("flush");
        let payload = read_frame(&mut reader).expect("read").expect("open");
        assert!(matches!(
            Response::decode(&payload).expect("decode"),
            Response::Stats(_)
        ));
    }

    // The good client never noticed any of it.
    good.ingest("good", &feed(2, 600)).expect("ingest");
    let (wire, _) = verdict_map(good.verdict(1e-12, Some("good")).expect("verdict"));
    assert!(wire[0].1.is_ok(), "{:?}", wire[0].1);
    let stats = good.stats().expect("stats");
    assert_eq!(stats.total, 1200);
    assert!(
        stats.protocol_errors >= 3,
        "three hostile exchanges must be counted, got {}",
        stats.protocol_errors
    );

    good.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
}

/// MERGE is sealed-blob-only: raw bytes, a truncated blob, a wrong
/// stream configuration and a duplicate channel are all rejected
/// without disturbing the session.
#[test]
fn merge_rejects_everything_but_matching_sealed_blobs() {
    let server = Server::bind("127.0.0.1:0", serve_config()).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = ServeClient::connect(addr).expect("connect");

    let values = feed(3, 600);
    let blob = sealed_blob(&values, 2);

    // Raw measurements are not state: refused.
    assert!(client
        .merge("fed", b"raw bytes are not a sealed blob")
        .is_err());
    // A torn blob fails its checksum: refused.
    assert!(client.merge("fed", &blob[..blob.len() - 3]).is_err());
    // A blob folded under a different stream configuration: refused.
    let mismatched = {
        let mut fed = FederatedAnalyzer::new(FederatedConfig::new(
            StreamConfig {
                block_size: 50,
                ..stream_config()
            },
            2,
        ))
        .expect("federated analyzer");
        fed.push_batch(&values).expect("ingest");
        save_federated(&fed)
    };
    assert!(client.merge("fed", &mismatched).is_err());

    // The real blob lands…
    let (channel_len, total) = client.merge("fed", &blob).expect("merge");
    assert_eq!(channel_len, 600);
    assert_eq!(total, 600);
    // …and cannot be adopted twice.
    assert!(client.merge("fed", &blob).is_err());

    let stats = client.stats().expect("stats");
    assert_eq!(stats.total, 600);
    assert_eq!(stats.channels, 1);

    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
}

/// A server-side MERGE of a sealed shard fold must match the in-process
/// `--shards N` federated session on every analysis field, bit for bit,
/// at every shard count.
#[test]
fn merged_blob_matches_in_process_sharded_session_bitwise() {
    let values = feed(42, 900);
    for shards in [1usize, 3, 4] {
        let server = Server::bind("127.0.0.1:0", serve_config()).expect("bind");
        let addr = server.local_addr();
        let handle = server.spawn();
        let mut client = ServeClient::connect(addr).expect("connect");

        client
            .merge("fold", &sealed_blob(&values, shards))
            .expect("merge");
        let (wire, _) = verdict_map(client.verdict(1e-12, Some("fold")).expect("verdict"));
        let got = wire[0].1.as_ref().expect("server verdict");

        // The same feed through the in-process federated session.
        let factory =
            proxima::stream::FederatedFactory::new(FederatedConfig::new(stream_config(), shards))
                .expect("factory");
        let mut session = MbptaConfig {
            block: BlockSpec::Fixed(stream_config().block_size),
            ..MbptaConfig::default()
        }
        .session()
        .target_p(1e-12)
        .build_with(factory)
        .expect("session");
        session.push_batch("fold", &values).expect("ingest");
        let merged = session.merge();
        let want = merged
            .verdict("fold")
            .expect("channel")
            .as_ref()
            .expect("verdict");

        assert_same_analysis(&format!("fold@{shards}"), got, want);
        client.shutdown().expect("shutdown");
        handle.join().unwrap().unwrap();
    }
}

/// Shutdown writes a final checkpoint; `Server::resume` restarts from
/// it and the continued campaign's verdict is bit-identical to an
/// uninterrupted offline run over the same feed order.
#[test]
fn shutdown_then_resume_is_bit_identical() {
    let dir = std::env::temp_dir().join("proxima_serve_e2e");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join(format!("resume_{}.ck", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let config = ServeConfig {
        checkpoint_path: Some(path.clone()),
        checkpoint_every: 400,
        ..serve_config()
    };
    let a = feed(7, 1300);
    let b = feed(8, 1300);

    let server = Server::bind("127.0.0.1:0", config.clone()).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = ServeClient::connect(addr).expect("connect");
    client.ingest("alpha", &a[..1000]).expect("ingest");
    client.ingest("beta", &b[..1000]).expect("ingest");
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();

    let server = Server::resume("127.0.0.1:0", &path, ResumeOptions::default()).expect("resume");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = ServeClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.total, 2000, "resume restores the full session");
    client.ingest("alpha", &a[1000..]).expect("ingest");
    client.ingest("beta", &b[1000..]).expect("ingest");
    let (wire, wire_envelope) = verdict_map(client.verdict(1e-12, None).expect("verdict"));
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();

    // Uninterrupted offline replay.
    let mut offline = offline_session(&config);
    offline.push_batch("alpha", &a).expect("ingest");
    offline.push_batch("beta", &b).expect("ingest");
    let merged = offline.merge();
    for (name, outcome) in &wire {
        let want = merged
            .verdict(name)
            .expect("channel")
            .as_ref()
            .expect("verdict");
        assert_same_analysis(name, outcome.as_ref().expect("verdict"), want);
    }
    let (_, want_budget) = merged.envelope_budget(1e-12).expect("envelope");
    assert_eq!(
        wire_envelope.expect("envelope").1.to_bits(),
        want_budget.to_bits()
    );
    let _ = std::fs::remove_file(&path);
}

/// The real binary: a 4-worker `mbpta serve` killed mid-campaign with
/// `--crash-after`, restarted with `--resume --workers 2` (the restored
/// channels are re-partitioned to the new worker count), resent the
/// not-yet-absorbed per-channel suffixes — and every verdict must be
/// bit-identical to an uninterrupted 1-worker server's.
#[test]
fn binary_crash_resume_over_network_is_bit_identical_across_worker_counts() {
    use std::process::{Child, Command, Stdio};

    const CHANNELS: [&str; 3] = ["alpha", "beta", "gamma"];
    const PER: usize = 1500;
    const CHUNK: usize = 512;

    let dir = std::env::temp_dir().join("proxima_serve_e2e");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let stem = format!("crash_{}.ck", std::process::id());
    let path = dir.join(&stem);

    fn spawn_serve(args: &[&str]) -> (Child, SocketAddr) {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mbpta"))
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn mbpta serve");
        let stdout = child.stdout.take().expect("stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("ready line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected ready line {line:?}"))
            .parse()
            .expect("addr");
        (child, addr)
    }

    let feeds: Vec<Vec<f64>> = (0..CHANNELS.len())
        .map(|i| feed(1234 + i as u64, PER))
        .collect();

    // Round-robin chunks across the channels, each channel starting at
    // its own offset. Per-channel order is what bit-identity depends
    // on (channels are independent engines), and it is identical in
    // every run this test makes.
    let ingest_from = |addr: SocketAddr, from: [usize; 3]| {
        let mut client = ServeClient::connect(addr).expect("connect");
        let mut next = from;
        loop {
            let mut sent = false;
            for (c, name) in CHANNELS.iter().enumerate() {
                if next[c] >= PER {
                    continue;
                }
                let end = (next[c] + CHUNK).min(PER);
                if client.ingest(name, &feeds[c][next[c]..end]).is_err() {
                    // The crashing server dies mid-feed — expected there.
                    return;
                }
                next[c] = end;
                sent = true;
            }
            if !sent {
                return;
            }
        }
    };

    // Mirror the server's deterministic cadence in the test: a
    // checkpoint latches the per-channel prefixes at every crossing of
    // --checkpoint-every, and --crash-after aborts once the total
    // passes it — so what survives the crash is exactly the last
    // latched prefix of each channel.
    let mut absorbed = [0usize; 3];
    let mut survived = [0usize; 3];
    let (mut total, mut last_ck) = (0usize, 0usize);
    'plan: loop {
        let mut sent = false;
        for c in 0..CHANNELS.len() {
            if absorbed[c] >= PER {
                continue;
            }
            let end = (absorbed[c] + CHUNK).min(PER);
            total += end - absorbed[c];
            absorbed[c] = end;
            sent = true;
            if total - last_ck >= 1000 {
                last_ck = total;
                survived = absorbed;
            }
            if total >= 2500 {
                break 'plan;
            }
        }
        assert!(sent, "the feed must outlast --crash-after");
    }
    assert!(
        survived.iter().all(|&s| s > 0),
        "the drill must leave every channel with surviving state"
    );

    // Reference: an uninterrupted 1-worker server over the same feeds.
    let (mut ref_child, ref_addr) = spawn_serve(&["serve", "--addr", "127.0.0.1:0"]);
    ingest_from(ref_addr, [0; 3]);
    let mut client = ServeClient::connect(ref_addr).expect("connect");
    let (reference, ref_envelope) = verdict_map(client.verdict(1e-12, None).expect("verdict"));
    client.shutdown().expect("shutdown");
    assert!(ref_child.wait().expect("wait").success());

    // Crash drill at 4 workers.
    let ck = path.to_str().expect("utf-8 path");
    let (mut child, addr) = spawn_serve(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "4",
        "--checkpoint",
        ck,
        "--checkpoint-every",
        "1000",
        "--crash-after",
        "2500",
    ]);
    ingest_from(addr, [0; 3]);
    assert!(
        !child.wait().expect("wait").success(),
        "--crash-after must abort the server"
    );

    // Restart at HALF the worker count, confirm what survived, resend
    // each channel's suffix.
    let (mut child, addr) = spawn_serve(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--resume",
        ck,
        "--workers",
        "2",
    ]);
    let mut client = ServeClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.total as usize, last_ck, "resume = last checkpoint");
    assert_eq!(stats.channels as usize, CHANNELS.len());
    assert_eq!(stats.workers, 2, "resume re-partitions to --workers 2");
    assert_eq!(stats.shards.len(), 2);
    drop(client);
    ingest_from(addr, survived);
    let mut client = ServeClient::connect(addr).expect("connect");
    let (resumed, resumed_envelope) = verdict_map(client.verdict(1e-12, None).expect("verdict"));
    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("wait").success());

    assert_eq!(reference.len(), CHANNELS.len());
    assert_eq!(resumed.len(), CHANNELS.len());
    for (name, outcome) in &resumed {
        let want = reference
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("reference missing channel {name}"));
        let want = want.1.as_ref().expect("reference verdict");
        let got = outcome.as_ref().expect("resumed verdict");
        assert_same_analysis(name, got, want);
        assert_eq!(
            got.provenance.engine, want.provenance.engine,
            "same engine either way"
        );
    }
    let (_, want_budget) = ref_envelope.expect("reference envelope");
    let (_, got_budget) = resumed_envelope.expect("resumed envelope");
    assert_eq!(got_budget.to_bits(), want_budget.to_bits(), "envelope bits");

    // The sharded checkpoint is a family of sibling files
    // (manifest + one sealed blob per worker) — sweep them all.
    for entry in std::fs::read_dir(&dir).expect("read_dir").flatten() {
        if entry.file_name().to_string_lossy().starts_with(&stem) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}
