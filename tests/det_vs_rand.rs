//! The DET-vs-RAND comparisons behind Figure 3 and the average-performance
//! claim.

// Deliberately exercises the deprecated pre-session API: these tests
// double as regression coverage for the `analyze`/`PipelineStreamExt`
// shims, which must stay behaviourally identical to the session path.
#![allow(deprecated)]

use proxima::prelude::*;

fn measure(config: PlatformConfig, layout_seed: u64, runs: usize, seed: u64) -> Vec<f64> {
    let mut platform = Platform::new(config);
    let tvca = Tvca::new(TvcaConfig {
        scale: Scale::Full,
        layout_seed,
    });
    let trace = tvca.trace(ControlMode::Nominal);
    platform
        .campaign(&trace, runs, seed)
        .into_iter()
        .map(|o| o.cycles as f64)
        .collect()
}

#[test]
fn average_performance_comparable() {
    // The paper: "there is not noticeable difference" between DET and RAND
    // average execution times. Allow a 5% band.
    let det: f64 = measure(PlatformConfig::deterministic(), 0, 30, 0)
        .iter()
        .sum::<f64>()
        / 30.0;
    let rand: f64 = measure(PlatformConfig::mbpta_compliant(), 0, 200, 0)
        .iter()
        .sum::<f64>()
        / 200.0;
    let rel = (rand - det).abs() / det;
    assert!(
        rel < 0.05,
        "DET {det:.0} vs RAND {rand:.0} ({:.1}%)",
        rel * 100.0
    );
}

#[test]
fn det_is_layout_sensitive_rand_is_not() {
    // DET: the layout decides the conflict pattern → per-layout times vary.
    let det_by_layout: Vec<f64> = (0..6)
        .map(|l| measure(PlatformConfig::deterministic(), l, 1, 0)[0])
        .collect();
    let det_min = det_by_layout.iter().cloned().fold(f64::MAX, f64::min);
    let det_max = det_by_layout.iter().cloned().fold(f64::MIN, f64::max);
    assert!(det_max > det_min, "layouts must differ on DET");

    // RAND: the per-layout *mean* stays put (placement randomization
    // absorbs the layout), even though individual runs vary.
    let rand_means: Vec<f64> = (0..6)
        .map(|l| {
            let xs = measure(PlatformConfig::mbpta_compliant(), l, 120, 1000 * l);
            xs.iter().sum::<f64>() / xs.len() as f64
        })
        .collect();
    let rm_min = rand_means.iter().cloned().fold(f64::MAX, f64::min);
    let rm_max = rand_means.iter().cloned().fold(f64::MIN, f64::max);
    let rand_spread = (rm_max - rm_min) / rm_min;
    let det_spread = (det_max - det_min) / det_min;
    assert!(
        rand_spread < det_spread,
        "RAND spread {rand_spread:.4} should be below DET spread {det_spread:.4}"
    );
}

#[test]
fn pwcet_within_same_order_of_magnitude_as_det() {
    // Figure 3's quantitative shape: pWCET estimates remain within the
    // same order of magnitude as the DET observations, starting around
    // +50% at cutoff 1e-6.
    let det = measure(PlatformConfig::deterministic(), 0, 1, 0)[0];
    let rand_times = measure(PlatformConfig::mbpta_compliant(), 0, 1000, 0);
    let report = analyze(&rand_times, &MbptaConfig::default()).expect("analysis");
    for exp in [6i32, 9, 12, 15] {
        let budget = report.budget_for(10f64.powi(-exp)).expect("budget");
        let ratio = budget / det;
        assert!(
            ratio > 0.9 && ratio < 10.0,
            "cutoff 1e-{exp}: ratio {ratio:.2} out of the order-of-magnitude band"
        );
    }
}

#[test]
fn mbta_baseline_with_50_percent_margin_is_competitive() {
    // MBTA(HWM+50%) and pWCET@1e-6 should be in the same ballpark — the
    // paper's "competitive" claim.
    let mut det_platform = Platform::new(PlatformConfig::deterministic());
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(ControlMode::Nominal);
    let det_campaign = Campaign::measure(&mut det_platform, &trace, 50, 0).expect("campaign");
    let mbta = MbtaEstimate::from_campaign(&det_campaign, 0.5).expect("baseline");

    let rand_times = measure(PlatformConfig::mbpta_compliant(), 0, 1000, 0);
    let report = analyze(&rand_times, &MbptaConfig::default()).expect("analysis");
    let pwcet6 = report.budget_for(1e-6).expect("budget");

    let ratio = pwcet6 / mbta.bound;
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "pWCET@1e-6 {pwcet6:.0} vs MBTA+50% {:.0} (ratio {ratio:.2})",
        mbta.bound
    );
}
