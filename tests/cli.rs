//! Integration tests of the `mbpta` CLI binary.
//!
//! Uses `CARGO_BIN_EXE_mbpta`, which Cargo points at the freshly built
//! binary when running integration tests of the defining package.

use std::process::Command;

fn mbpta() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mbpta"))
}

#[test]
fn help_prints_usage() {
    let out = mbpta().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("analyze"));
    assert!(text.contains("measure"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = mbpta().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn measure_then_analyze_pipeline() {
    // measure → file → analyze: the round trip a real user would run.
    let out = mbpta()
        .args(["measure", "--runs", "600", "--seed", "10000000"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let dir = std::env::temp_dir().join("proxima_cli_test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let file = dir.join("campaign.txt");
    std::fs::write(&file, &out.stdout).expect("write campaign");

    let out = mbpta()
        .args([
            "analyze",
            file.to_str().expect("utf8 path"),
            "--cutoff",
            "1e-9",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PASSED"), "{text}");
    assert!(text.contains("headline budget @ 1e-9"));

    // The CV mode runs on the same file.
    let out = mbpta()
        .args(["analyze", file.to_str().expect("utf8 path"), "--cv"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("MBPTA-CV"));
}

#[test]
fn stream_from_file_emits_snapshots_and_final() {
    // measure → file → stream: incremental analysis of a recorded
    // campaign.
    let out = mbpta()
        .args(["measure", "--runs", "600", "--seed", "10000000"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let dir = std::env::temp_dir().join("proxima_cli_test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let file = dir.join("stream_campaign.txt");
    std::fs::write(&file, &out.stdout).expect("write campaign");

    let out = mbpta()
        .args([
            "stream",
            file.to_str().expect("utf8 path"),
            "--block",
            "25",
            "--every",
            "4",
            "--target-p",
            "1e-9",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("snapshot n="), "{text}");
    assert!(text.contains("pwcet@1e-9"), "{text}");
    assert!(text.contains("final n=600"), "{text}");
}

#[test]
fn stream_simulate_runs_live() {
    let out = mbpta()
        .args([
            "stream",
            "--simulate",
            "--runs",
            "400",
            "--block",
            "25",
            "--every",
            "4",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("snapshot n="), "{text}");
    assert!(text.contains("final n=400"), "{text}");
}

#[test]
fn stream_too_short_input_fails_cleanly() {
    let dir = std::env::temp_dir().join("proxima_cli_test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let file = dir.join("short.txt");
    std::fs::write(&file, "100\n101\n102\n").expect("write");
    let out = mbpta()
        .args(["stream", file.to_str().expect("utf8 path")])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("too small"));
}

#[test]
fn analyze_missing_file_fails() {
    let out = mbpta()
        .args(["analyze", "/nonexistent/measurements.txt"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn analyze_rejects_degenerate_input() {
    let dir = std::env::temp_dir().join("proxima_cli_test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let file = dir.join("constant.txt");
    std::fs::write(&file, "100\n".repeat(500)).expect("write");
    let out = mbpta()
        .args(["analyze", file.to_str().expect("utf8 path")])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
}
