//! Integration tests of the `mbpta` CLI binary.
//!
//! Uses `CARGO_BIN_EXE_mbpta`, which Cargo points at the freshly built
//! binary when running integration tests of the defining package.

use std::process::Command;

fn mbpta() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mbpta"))
}

#[test]
fn help_prints_usage() {
    let out = mbpta().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("analyze"));
    assert!(text.contains("measure"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = mbpta().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn measure_then_analyze_pipeline() {
    // measure → file → analyze: the round trip a real user would run.
    let out = mbpta()
        .args(["measure", "--runs", "600", "--seed", "10000000"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let dir = std::env::temp_dir().join("proxima_cli_test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let file = dir.join("campaign.txt");
    std::fs::write(&file, &out.stdout).expect("write campaign");

    let out = mbpta()
        .args([
            "analyze",
            file.to_str().expect("utf8 path"),
            "--cutoff",
            "1e-9",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PASSED"), "{text}");
    assert!(text.contains("headline budget @ 1e-9"));

    // The CV mode runs on the same file.
    let out = mbpta()
        .args(["analyze", file.to_str().expect("utf8 path"), "--cv"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("MBPTA-CV"));
}

#[test]
fn stream_from_file_emits_snapshots_and_final() {
    // measure → file → stream: incremental analysis of a recorded
    // campaign.
    let out = mbpta()
        .args(["measure", "--runs", "600", "--seed", "10000000"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let dir = std::env::temp_dir().join("proxima_cli_test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let file = dir.join("stream_campaign.txt");
    std::fs::write(&file, &out.stdout).expect("write campaign");

    let out = mbpta()
        .args([
            "stream",
            file.to_str().expect("utf8 path"),
            "--block",
            "25",
            "--every",
            "4",
            "--target-p",
            "1e-9",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("snapshot n="), "{text}");
    assert!(text.contains("pwcet@1e-9"), "{text}");
    assert!(text.contains("final n=600"), "{text}");
}

#[test]
fn stream_simulate_runs_live() {
    let out = mbpta()
        .args([
            "stream",
            "--simulate",
            "--runs",
            "400",
            "--block",
            "25",
            "--every",
            "4",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("snapshot n="), "{text}");
    assert!(text.contains("final n=400"), "{text}");
}

#[test]
fn stream_too_short_input_fails_cleanly() {
    let dir = std::env::temp_dir().join("proxima_cli_test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let file = dir.join("short.txt");
    std::fs::write(&file, "100\n101\n102\n").expect("write");
    let out = mbpta()
        .args(["stream", file.to_str().expect("utf8 path")])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("too small"));
}

/// Build a 3-channel tagged file by relabelling a measured campaign
/// round-robin, returning the path and the per-channel vectors.
fn tagged_fixture(name: &str) -> (std::path::PathBuf, Vec<(String, Vec<f64>)>) {
    let out = mbpta()
        .args(["measure", "--runs", "1800", "--seed", "10000000"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let values: Vec<f64> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|l| l.trim().parse().expect("measurement"))
        .collect();
    let channels = ["alpha", "beta", "gamma"];
    let mut per_channel: Vec<(String, Vec<f64>)> = channels
        .iter()
        .map(|c| (c.to_string(), Vec::new()))
        .collect();
    let mut tagged = String::new();
    tagged.push_str("# tagged 3-channel feed\n");
    for (i, v) in values.iter().enumerate() {
        let c = i % channels.len();
        tagged.push_str(&format!("{} {v}\n", channels[c]));
        per_channel[c].1.push(*v);
    }
    let dir = std::env::temp_dir().join("proxima_cli_test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let file = dir.join(name);
    std::fs::write(&file, tagged).expect("write tagged feed");
    (file, per_channel)
}

#[test]
fn session_from_tagged_file_reports_all_channels_and_envelope() {
    let (file, channels) = tagged_fixture("session_feed.txt");
    let out = mbpta()
        .args([
            "session",
            file.to_str().expect("utf8 path"),
            "--block",
            "25",
            "--every",
            "300",
            "--target-p",
            "1e-9",
            "--jobs",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("snapshot channel="), "{text}");
    assert!(text.contains("session total=1800 channels=3"), "{text}");
    for (name, times) in &channels {
        assert!(
            text.contains(&format!("channel {name} n={}", times.len())),
            "{text}"
        );
    }
    assert!(text.contains("envelope pwcet@1e-9"), "{text}");
}

#[test]
fn session_batch_engines_run_on_the_same_feed() {
    let (file, _) = tagged_fixture("session_feed_batch.txt");
    let out = mbpta()
        .args([
            "session",
            file.to_str().expect("utf8 path"),
            "--batch",
            "--block",
            "25",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("engine=batch"), "{text}");
    assert!(text.contains("envelope pwcet@1e-12"), "{text}");
}

#[test]
fn session_simulate_measures_all_paths_in_one_pool() {
    let out = mbpta()
        .args([
            "session",
            "--simulate",
            "--runs",
            "400",
            "--block",
            "25",
            "--every",
            "200",
            "--jobs",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("session total=1600 channels=4"), "{text}");
    for path in ["nominal", "saturated-x", "saturated-y", "fault-recovery"] {
        assert!(text.contains(&format!("channel {path} ")), "{text}");
    }
    assert!(text.contains("envelope pwcet@1e-12"), "{text}");
}

#[test]
fn session_quarantines_bad_channel_but_reports_the_rest() {
    let (file, _) = tagged_fixture("session_feed_mixed.txt");
    // Append a degenerate channel: constant values cannot be analysed.
    let mut feed = std::fs::read_to_string(&file).expect("read fixture");
    for _ in 0..600 {
        feed.push_str("stuck 500\n");
    }
    let dir = std::env::temp_dir().join("proxima_cli_test");
    let mixed = dir.join("session_feed_with_bad.txt");
    std::fs::write(&mixed, feed).expect("write mixed feed");

    let out = mbpta()
        .args([
            "session",
            mixed.to_str().expect("utf8 path"),
            "--block",
            "25",
        ])
        .output()
        .expect("spawn");
    // Exit code signals the failed channel, but the healthy channels and
    // the envelope are still reported.
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("channel stuck FAILED"), "{text}");
    assert!(text.contains("channel alpha n="), "{text}");
    assert!(text.contains("envelope pwcet@1e-12"), "{text}");
}

#[test]
fn session_sharded_report_is_identical_at_every_shard_count() {
    // The end-to-end determinism invariant the CI job enforces on the
    // built binary: federated channels fold block-aligned shard states,
    // so the report must not depend on the shard count (or on --jobs).
    let run = |shards: &str, jobs: &str| {
        let out = mbpta()
            .args([
                "session",
                "--simulate",
                "--runs",
                "800",
                "--block",
                "25",
                "--shards",
                shards,
                "--jobs",
                jobs,
            ])
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let reference = run("1", "1");
    assert!(reference.contains("engine=federated"), "{reference}");
    assert!(reference.contains("envelope pwcet@1e-12"), "{reference}");
    for (shards, jobs) in [("4", "1"), ("1", "8"), ("4", "8")] {
        assert_eq!(
            reference,
            run(shards, jobs),
            "report diverged at --shards {shards} --jobs {jobs}"
        );
    }
}

#[test]
fn session_rejects_conflicting_flag_combos() {
    // Table-driven negative paths: every conflicting combination must be
    // rejected fast (before any measuring/IO) with a pointed message.
    // Covers the pre-existing --shards conflicts plus the checkpoint /
    // resume flag surface.
    let table: &[(&[&str], &str)] = &[
        // Engine-selection conflicts (PR 4 invariants).
        (
            &["session", "--simulate", "--batch", "--shards", "2"],
            "--shards",
        ),
        (
            &[
                "session",
                "--simulate",
                "--shards",
                "2",
                "--stop-on-converged",
            ],
            "--stop-on-converged",
        ),
        // Checkpoint flags come in pairs.
        (
            &["session", "--simulate", "--checkpoint", "ck.bin"],
            "--checkpoint requires",
        ),
        (
            &["session", "--simulate", "--checkpoint-every", "100"],
            "--checkpoint-every requires",
        ),
        (
            &[
                "session",
                "--simulate",
                "--checkpoint",
                "ck.bin",
                "--checkpoint-every",
                "0",
            ],
            "--checkpoint-every must be positive",
        ),
        // --resume records the configuration; re-specifying it conflicts.
        (
            &["session", "--resume", "ck.bin", "--batch"],
            "--batch conflicts with --resume",
        ),
        (
            &["session", "--resume", "ck.bin", "--shards", "4"],
            "--shards conflicts with --resume",
        ),
        (
            &["session", "--resume", "ck.bin", "--block", "25"],
            "--block conflicts with --resume",
        ),
        (
            &["session", "--resume", "ck.bin", "--every", "100"],
            "--every conflicts with --resume",
        ),
        (
            &["session", "--resume", "ck.bin", "--target-p", "1e-9"],
            "--target-p conflicts with --resume",
        ),
        (
            &["session", "--resume", "ck.bin", "--stop-on-converged"],
            "--stop-on-converged conflicts with --resume",
        ),
        (
            &["session", "--resume", "ck.bin", "--simulate"],
            "--simulate conflicts with --resume",
        ),
        (
            &["session", "--resume", "ck.bin", "--runs", "100"],
            "--runs conflicts with --resume",
        ),
        (
            &["session", "--resume", "ck.bin", "--seed", "7"],
            "--seed conflicts with --resume",
        ),
        // Simulation-only flags still need --simulate.
        (&["session", "--runs", "100"], "--runs requires --simulate"),
        (&["session", "--seed", "5"], "--seed requires --simulate"),
        // --path never applied to sessions.
        (
            &["session", "--simulate", "--path", "nominal"],
            "--path is not valid",
        ),
    ];
    for (args, expected) in table {
        let out = mbpta().args(*args).output().expect("spawn");
        assert!(
            !out.status.success(),
            "`{}` unexpectedly succeeded",
            args.join(" ")
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(expected),
            "`{}` stderr missing `{expected}`:\n{stderr}",
            args.join(" ")
        );
    }
}

#[test]
fn session_resume_rejects_missing_and_corrupt_checkpoints() {
    let out = mbpta()
        .args(["session", "--resume", "/nonexistent/ck.bin"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot open"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let dir = std::env::temp_dir().join("proxima_cli_test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let bogus = dir.join("bogus_checkpoint.bin");
    std::fs::write(&bogus, b"definitely not a checkpoint").expect("write");
    let out = mbpta()
        .args(["session", "--resume", bogus.to_str().expect("utf8 path")])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checkpoint"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn session_checkpoint_crash_resume_is_bit_identical() {
    // The restart-determinism contract, end to end on the built binary:
    // crash a checkpointing session mid-campaign (deterministically, via
    // --crash-after), resume from the last atomic checkpoint, and the
    // resumed stdout must be an exact suffix of the uninterrupted run's
    // — snapshots and final report alike — for stream and federated
    // engines.
    let dir = std::env::temp_dir().join("proxima_cli_test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    for (label, extra) in [("stream", &[][..]), ("federated", &["--shards", "4"][..])] {
        let ck = dir.join(format!("crash_resume_{label}.bin"));
        let _ = std::fs::remove_file(&ck);
        let base = ["session", "--simulate", "--runs", "500", "--block", "25"];

        let full = mbpta().args(base).args(extra).output().expect("spawn");
        assert!(full.status.success());
        let full_log = String::from_utf8_lossy(&full.stdout).to_string();

        let crashed = mbpta()
            .args(base)
            .args(extra)
            .args([
                "--checkpoint",
                ck.to_str().expect("utf8 path"),
                "--checkpoint-every",
                "600",
                "--crash-after",
                "1500",
            ])
            .output()
            .expect("spawn");
        assert!(!crashed.status.success(), "--crash-after must kill the run");
        assert!(ck.exists(), "a checkpoint must survive the crash");

        let resumed = mbpta()
            .args(["session", "--resume", ck.to_str().expect("utf8 path")])
            .output()
            .expect("spawn");
        assert!(
            resumed.status.success(),
            "{}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        let resumed_log = String::from_utf8_lossy(&resumed.stdout).to_string();
        assert!(
            full_log.ends_with(&resumed_log),
            "[{label}] resumed output is not a suffix of the uninterrupted run\n\
             --- uninterrupted ---\n{full_log}\n--- resumed ---\n{resumed_log}"
        );
        assert!(resumed_log.contains("session total=2000 channels=4"));
    }
}

#[test]
fn session_rejects_malformed_tagged_line() {
    let dir = std::env::temp_dir().join("proxima_cli_test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let file = dir.join("session_bad_line.txt");
    std::fs::write(&file, "alpha 100\nnot-a-tagged-line\n").expect("write");
    let out = mbpta()
        .args(["session", file.to_str().expect("utf8 path")])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("bad tagged line"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn analyze_missing_file_fails() {
    let out = mbpta()
        .args(["analyze", "/nonexistent/measurements.txt"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn analyze_rejects_degenerate_input() {
    let dir = std::env::temp_dir().join("proxima_cli_test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let file = dir.join("constant.txt");
    std::fs::write(&file, "100\n".repeat(500)).expect("write");
    let out = mbpta()
        .args(["analyze", file.to_str().expect("utf8 path")])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
}
