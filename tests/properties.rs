//! Cross-crate property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use proxima::prelude::*;
use proxima::sim::{Addr, CacheConfig, SetAssocCache};
use proxima::stats::dist::Gumbel;
use proxima::stats::evt::block_maxima;

proptest! {
    /// The pWCET budget is monotone decreasing in the cutoff probability
    /// for any valid Gumbel and block size.
    #[test]
    fn pwcet_budget_monotone(
        mu in 1e3f64..1e9,
        beta in 1e-2f64..1e5,
        block in 1usize..500,
        exp_a in 2i32..15,
        exp_b in 2i32..15,
    ) {
        prop_assume!(exp_a < exp_b);
        let pwcet = Pwcet::new(Gumbel::new(mu, beta).unwrap(), block);
        let pa = pwcet.budget_for(10f64.powi(-exp_a)).unwrap();
        let pb = pwcet.budget_for(10f64.powi(-exp_b)).unwrap();
        prop_assert!(pb >= pa, "smaller cutoff must give larger budget");
    }

    /// budget_for and exceedance_probability invert each other.
    #[test]
    fn pwcet_round_trip(
        mu in 1e3f64..1e7,
        beta in 1.0f64..1e4,
        block in 1usize..200,
        exp in 3i32..15,
    ) {
        let pwcet = Pwcet::new(Gumbel::new(mu, beta).unwrap(), block);
        let p = 10f64.powi(-exp);
        let budget = pwcet.budget_for(p).unwrap();
        let back = pwcet.exceedance_probability(budget);
        prop_assert!((back / p - 1.0).abs() < 1e-4, "p={p} back={back}");
    }

    /// Block maxima dominate their blocks and are order-preserving under
    /// monotone shifts of the sample.
    #[test]
    fn block_maxima_invariants(
        sample in prop::collection::vec(0.0f64..1e6, 64..512),
        block in 2usize..32,
        shift in 0.0f64..1e5,
    ) {
        prop_assume!(sample.len() >= 2 * block);
        let maxima = block_maxima(&sample, block).unwrap();
        prop_assert_eq!(maxima.len(), sample.len() / block);
        for (i, &m) in maxima.iter().enumerate() {
            for &x in &sample[i * block..(i + 1) * block] {
                prop_assert!(m >= x);
            }
        }
        // Shift equivariance.
        let shifted: Vec<f64> = sample.iter().map(|x| x + shift).collect();
        let shifted_maxima = block_maxima(&shifted, block).unwrap();
        for (a, b) in maxima.iter().zip(&shifted_maxima) {
            prop_assert!((a + shift - b).abs() < 1e-6);
        }
    }

    /// A cache access to an address just allocated by a load always hits,
    /// for every placement/replacement combination and any seed.
    #[test]
    fn cache_load_then_hit(
        addr in 0u64..(1 << 30),
        seed in 0u64..1000,
        placement in 0usize..3,
        replacement in 0usize..3,
    ) {
        use proxima::sim::{PlacementPolicy, ReplacementPolicy};
        let placements = [PlacementPolicy::Modulo, PlacementPolicy::RandomModulo, PlacementPolicy::HashRandom];
        let replacements = [ReplacementPolicy::Lru, ReplacementPolicy::Random, ReplacementPolicy::RoundRobin];
        let cfg = CacheConfig::leon3_l1(placements[placement], replacements[replacement]);
        let mut cache = SetAssocCache::new(cfg);
        cache.reseed(seed);
        let mut rng = Mwc64::new(seed);
        cache.access(Addr::new(addr), false, &mut rng);
        prop_assert!(cache.access(Addr::new(addr), false, &mut rng).is_hit());
    }

    /// Simulation determinism: any trace of loads replayed with the same
    /// seed gives the same cycle count.
    #[test]
    fn platform_run_deterministic(
        addrs in prop::collection::vec(0u64..(1 << 24), 1..200),
        seed in 0u64..500,
    ) {
        let trace: Vec<Inst> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| Inst::load(0x1000 + 4 * i as u64, a))
            .collect();
        let mut p = Platform::new(PlatformConfig::mbpta_compliant());
        let a = p.run(&trace, seed).cycles;
        let b = p.run(&trace, seed).cycles;
        prop_assert_eq!(a, b);
    }

    /// The MBTA bound scales linearly with the margin and never undercuts
    /// the high watermark.
    #[test]
    fn mbta_bound_properties(
        times in prop::collection::vec(1.0f64..1e9, 2..100),
        margin in 0.0f64..3.0,
    ) {
        let campaign = Campaign::from_times(times).unwrap();
        let est = MbtaEstimate::from_campaign(&campaign, margin).unwrap();
        prop_assert!(est.bound >= est.high_watermark);
        prop_assert!((est.bound - est.high_watermark * (1.0 + margin)).abs() < 1e-6);
    }
}
