//! Multicore bus-contention behaviour (experiment A8 as assertions).

// Deliberately exercises the deprecated pre-session API: these tests
// double as regression coverage for the `analyze`/`PipelineStreamExt`
// shims, which must stay behaviourally identical to the session path.
#![allow(deprecated)]

use proxima::mbpta::{analyze, MbptaConfig};
use proxima::prelude::*;
use proxima::sim::bus::BusModel;

fn contended_campaign(interfering: u64, runs: usize) -> Vec<f64> {
    let mut config = PlatformConfig::mbpta_compliant();
    config.bus = BusModel::leon3(interfering);
    let mut platform = Platform::new(config);
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(ControlMode::Nominal);
    platform
        .campaign(&trace, runs, 10_000_000)
        .into_iter()
        .map(|o| o.cycles as f64)
        .collect()
}

#[test]
fn interference_raises_mean_monotonically() {
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let mut prev = 0.0;
    for k in 0..=3 {
        let m = mean(&contended_campaign(k, 120));
        assert!(m > prev, "mean must grow with interferers (k={k})");
        prev = m;
    }
}

#[test]
fn contended_campaign_remains_analysable() {
    // Randomized arbitration keeps the campaign i.i.d.: the full MBPTA
    // pipeline must run under worst contention.
    let times = contended_campaign(3, 600);
    let report = analyze(&times, &MbptaConfig::default()).expect("analysis under contention");
    assert!(report.iid.passed);
    let b = report.budget_for(1e-12).expect("budget");
    assert!(b > report.high_watermark());
}

#[test]
fn contention_increment_is_bounded() {
    // The worst-case increment per interferer is one bus slot per L1 miss:
    // mean(k=3) stays within a modest factor of mean(k=0).
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let m0 = mean(&contended_campaign(0, 100));
    let m3 = mean(&contended_campaign(3, 100));
    assert!(m3 < m0 * 1.5, "m0={m0} m3={m3}");
}

#[test]
fn contended_pwcet_dominates_uncontended() {
    let uncontended = analyze(&contended_campaign(0, 600), &MbptaConfig::default()).unwrap();
    let contended = analyze(&contended_campaign(3, 600), &MbptaConfig::default()).unwrap();
    let b0 = uncontended.budget_for(1e-12).unwrap();
    let b3 = contended.budget_for(1e-12).unwrap();
    assert!(b3 > b0, "contention must raise the pWCET ({b0} vs {b3})");
}
