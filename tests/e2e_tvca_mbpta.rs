//! End-to-end reproduction of the paper's analysis flow: TVCA on the
//! randomized platform → i.i.d. gate → EVT fit → pWCET.

// Deliberately exercises the deprecated pre-session API: these tests
// double as regression coverage for the `analyze`/`PipelineStreamExt`
// shims, which must stay behaviourally identical to the session path.
#![allow(deprecated)]

use proxima::prelude::*;

fn full_tvca_campaign(runs: usize, seed: u64) -> Campaign {
    let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(ControlMode::Nominal);
    Campaign::measure(&mut platform, &trace, runs, seed).expect("campaign")
}

#[test]
fn tvca_campaign_passes_iid_gate() {
    // The paper's headline protocol result: on the randomized platform the
    // measured times pass both tests at alpha = 0.05 (reported p-values
    // 0.83 and 0.45).
    let campaign = full_tvca_campaign(600, 0);
    let report = analyze(campaign.times(), &MbptaConfig::default()).expect("analysis");
    assert!(report.iid.passed);
    assert!(report.iid.ljung_box.p_value >= 0.05);
    assert!(report.iid.ks.p_value >= 0.05);
}

#[test]
fn pwcet_upper_bounds_observations_tightly() {
    // Figure 2's shape: the fitted line upper-bounds the empirical tail,
    // and stays within the same order of magnitude.
    // Fixed base seed verified to pass the 5%-level gate (any seed has a
    // 5% false-rejection chance; pinning keeps the test deterministic).
    let campaign = full_tvca_campaign(600, 2_000_000);
    let report = analyze(campaign.times(), &MbptaConfig::default()).expect("analysis");
    let hwm = report.high_watermark();
    let b9 = report.budget_for(1e-9).expect("budget");
    let b15 = report.budget_for(1e-15).expect("budget");
    assert!(b9 > hwm * 0.999, "b9={b9} must not undercut the hwm region");
    assert!(
        b15 < hwm * 1.5,
        "b15={b15} stays within the order of magnitude (hwm={hwm})"
    );
    assert!(b15 > b9);
}

#[test]
fn deterministic_platform_fails_mbpta_gate() {
    // On DET, every run with the same layout yields the same time: MBPTA
    // must refuse (degenerate sample — nothing to fit).
    let mut platform = Platform::new(PlatformConfig::deterministic());
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(ControlMode::Nominal);
    let campaign = Campaign::measure(&mut platform, &trace, 200, 0).expect("campaign");
    let result = analyze(campaign.times(), &MbptaConfig::default());
    assert!(result.is_err(), "DET campaigns must not be analysable");
}

#[test]
fn campaign_protocol_is_reproducible() {
    let a = full_tvca_campaign(100, 7);
    let b = full_tvca_campaign(100, 7);
    assert_eq!(a.times(), b.times(), "same base seed → identical campaign");
    let c = full_tvca_campaign(100, 8);
    assert_ne!(a.times(), c.times(), "different seeds → different campaign");
}

#[test]
fn convergence_criterion_satisfied_by_large_campaign() {
    use proxima::mbpta::convergence::{check_convergence, ConvergenceConfig};
    let campaign = full_tvca_campaign(1500, 3);
    let report = check_convergence(
        &campaign,
        &ConvergenceConfig {
            min_runs: 300,
            step: 150,
            ..ConvergenceConfig::default()
        },
    )
    .expect("convergence analysis");
    assert!(report.converged(), "trajectory: {:?}", report.trajectory);
}

#[test]
fn render_report_mentions_pass_and_estimates() {
    let campaign = full_tvca_campaign(600, 11);
    let report = analyze(campaign.times(), &MbptaConfig::default()).expect("analysis");
    let text = render_report(&report);
    assert!(text.contains("PASSED"));
    assert!(text.contains("1e-12"));
}
