//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *tiny* subset of the `rand` 0.8 API its tests and doctests
//! actually use: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen` for `f64`/`u64`/`bool`. The generator behind `StdRng` is
//! xoshiro256++ (state expanded from the seed by SplitMix64) —
//! statistically strong enough for every test in this workspace (which
//! only assert distributional properties, never exact streams).
//!
//! If the real `rand` crate ever becomes available, delete this directory
//! and point the workspace dependency back at crates.io; no call site needs
//! to change.

#![forbid(unsafe_code)]

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface: construct a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution of `Rng::gen`.
pub trait Standard {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`], exactly as in the real crate).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator: xoshiro256++ (Blackman & Vigna),
    /// its 256-bit state expanded from the seed by SplitMix64 — the
    /// seeding scheme the xoshiro authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval_with_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean={mean}");
    }
}
