//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the proptest API its property tests use: the
//! `proptest!` macro with `ident in strategy` bindings, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, `any::<T>()`, range strategies for
//! the numeric types, tuples of strategies, and
//! `prop::collection::{vec, hash_set}`.
//!
//! Semantics: each test body runs [`CASES`] times on pseudo-random inputs
//! drawn from a deterministic per-test stream (seeded from the test's
//! module path, so runs are reproducible). There is no shrinking — a
//! failing case panics with the generated arguments so it can be replayed
//! by hand. If the real proptest crate becomes available, delete this
//! directory and repoint the workspace dependency; no call site changes.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Number of accepted cases each property runs.
pub const CASES: u32 = 64;

/// Maximum total attempts (accepted + rejected) before a property gives up.
pub const MAX_ATTEMPTS: u32 = CASES * 20;

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; try another input.
    Reject,
    /// An assertion failed; the string describes which.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// The deterministic generator driving input sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream from a test identifier (e.g. its module path), so
    /// every test gets its own reproducible inputs.
    pub fn new(test_id: &str) -> Self {
        // FNV-1a over the identifier.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let len = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % len) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let len = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                // A full-width u64 range has len 2^64, which still fits u128.
                (*self.start() as i128 + (u128::from(rng.next_u64()) % len) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

/// Strategy for values with a canonical "any value" distribution.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing any value of `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::{vec, hash_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A hash set of `size` distinct elements drawn from `element` (best
    /// effort: sampling stops after a bounded number of duplicate draws).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.clone().sample(rng);
            let mut set = HashSet::with_capacity(n);
            let mut attempts = 0;
            while set.len() < n && attempts < n * 20 + 100 {
                attempts += 1;
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

/// Path-compatible alias so call sites can write `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy, TestCaseError,
    };
}

/// The property-test macro: runs the body [`CASES`] times on inputs drawn
/// from the given strategies. No shrinking; failures report the generated
/// arguments verbatim.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < $crate::CASES && attempts < $crate::MAX_ATTEMPTS {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let case = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property `{}` failed: {}\n  case: {}", stringify!($name), msg, case)
                        }
                    }
                }
                assert!(
                    accepted >= $crate::CASES,
                    "property `{}` gave up: {} of {} cases rejected",
                    stringify!($name),
                    attempts - accepted,
                    attempts
                );
            }
        )*
    };
}

/// Assert inside a property body; failure aborts only this case with a
/// replayable message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 10u64..20, y in -5i32..5, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(0u64..10, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn inclusive_full_range_total(x in 0u64..=u64::MAX) {
            let _ = x; // sampling itself must not overflow
            prop_assert!(true);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = super::TestRng::new("same");
        let mut b = super::TestRng::new("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::new("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
