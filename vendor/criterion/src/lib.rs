//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the criterion 0.5 API its benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, sample_size, bench_function,
//! bench_with_input, finish}`, `BenchmarkId::new`, `Throughput::Elements`
//! and `Bencher::iter`.
//!
//! Measurement model: each benchmark is warmed up, calibrated to a batch
//! of iterations lasting roughly [`TARGET_BATCH`], then timed over
//! `sample_size` batches; the mean, minimum and maximum ns/iteration are
//! printed (no plots, no statistics machinery). Passing `--test` on the
//! command line (the flag CI's bench-smoke job uses, same as real
//! criterion) runs every benchmark exactly once and skips measurement.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Wall-clock length a calibrated measurement batch aims for.
pub const TARGET_BATCH: Duration = Duration::from_millis(50);

/// Work-rate annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// The benchmark driver handed to every registered bench function.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Build a driver from the process command line (`--test` selects
    /// run-once smoke mode; a bare argument filters benchmarks by
    /// substring).
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with('-') => {} // --bench and friends: ignore
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group's per-iteration work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Register and run a benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, &mut f);
        self
    }

    /// Register and run a benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group (kept for API compatibility; output is immediate).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full_id = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            samples_ns_per_iter: Vec::new(),
        };
        f(&mut bencher);
        if bencher.test_mode {
            println!("{full_id}: ok (smoke)");
            return;
        }
        let samples = &bencher.samples_ns_per_iter;
        if samples.is_empty() {
            println!("{full_id}: no measurement (Bencher::iter never called)");
            return;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / mean)
            }
            None => String::new(),
        };
        println!("{full_id:<55} time: [{min:>12.1} {mean:>12.1} {max:>12.1}] ns/iter{rate}");
    }
}

/// Times a closure over calibrated batches of iterations.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples_ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Run `routine` under the timer. In `--test` mode it runs exactly
    /// once; otherwise it is calibrated and sampled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Calibrate: how many iterations fill one target batch?
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        // Warm-up batch, then timed batches.
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.samples_ns_per_iter.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns_per_iter
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Collect bench functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("fit", 50);
        assert_eq!(id.id, "fit/50");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut counter = 0u32;
        let mut b = Bencher {
            test_mode: true,
            sample_size: 10,
            samples_ns_per_iter: Vec::new(),
        };
        b.iter(|| counter += 1);
        assert_eq!(counter, 1);
        assert!(b.samples_ns_per_iter.is_empty());
    }

    #[test]
    fn measurement_collects_samples() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            samples_ns_per_iter: Vec::new(),
        };
        b.iter(|| std::hint::black_box(2u64 + 2));
        assert_eq!(b.samples_ns_per_iter.len(), 3);
        assert!(b.samples_ns_per_iter.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn groups_run_and_filter() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("match-me".into()),
        };
        let mut ran = Vec::new();
        let mut group = c.benchmark_group("g");
        group.bench_function("match-me", |b| b.iter(|| ran.push("yes")));
        group.bench_function("other", |b| b.iter(|| ran.push("no")));
        group.finish();
        assert_eq!(ran, vec!["yes"]);
    }
}
