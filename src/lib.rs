//! **proxima** — probabilistic timing analysis on time-randomized
//! platforms.
//!
//! A full reproduction of Fernandez et al., *"Probabilistic Timing Analysis
//! on Time-Randomized Platforms for the Space Domain"* (DATE 2017): an
//! MBPTA-compliant LEON3-class platform model with time-randomized caches,
//! a synthetic ESA-style Thrust Vector Control Application, and the MBPTA
//! statistical pipeline (i.i.d. validation, extreme-value tail fitting,
//! pWCET estimation) together with the industrial MBTA baseline it is
//! compared against.
//!
//! This crate is a facade: it re-exports the workspace crates —
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`prng`] | `proxima-prng` | SIL3-style PRNGs + health tests |
//! | [`stats`] | `proxima-stats` | distributions, hypothesis tests, EVT |
//! | [`sim`] | `proxima-sim` | LEON3-like randomized platform model |
//! | [`workload`] | `proxima-workload` | TVCA + control kernels |
//! | [`mbpta`] | `proxima-mbpta` | the MBPTA pipeline and pWCET type |
//! | [`stream`] | `proxima-stream` | streaming MBPTA: online ingestion + incremental refit |
//! | [`serve`] | `proxima-serve` | framed-TCP analysis service over the session core |
//!
//! # Quickstart
//!
//! Measure the TVCA on the randomized platform and derive a pWCET:
//!
//! ```
//! use proxima::prelude::*;
//!
//! // 1. The MBPTA-compliant platform and the application.
//! let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
//! let tvca = Tvca::new(TvcaConfig { scale: Scale::Full, layout_seed: 0 });
//!
//! // 2. Measurement campaign on one path (fresh seed per run).
//! let trace = tvca.trace(ControlMode::Nominal);
//! let campaign = Campaign::measure(&mut platform, &trace, 300, 0)?;
//!
//! // 3. MBPTA: i.i.d. gate, EVT fit, pWCET (one-shot session).
//! let verdict = MbptaConfig::default().session().analyze(campaign.times())?;
//! let budget = verdict.budget_for(1e-12)?;
//! assert!(budget > verdict.high_watermark());
//! # Ok::<(), proxima::mbpta::MbptaError>(())
//! ```
//!
//! Multi-channel feeds (per path / per core / per tenant) go through the
//! same builder: `MbptaConfig::default().session().build_batch()` (or
//! `.build_stream()` from the [`stream`] crate's `SessionStreamExt`)
//! demultiplexes `Tagged { channel, time }` measurements to one engine
//! per channel and merges the per-channel verdicts into a program-level
//! envelope — see `examples/session_demux.rs` and `mbpta session`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use proxima_mbpta as mbpta;
pub use proxima_prng as prng;
pub use proxima_serve as serve;
pub use proxima_sim as sim;
pub use proxima_stats as stats;
pub use proxima_stream as stream;
pub use proxima_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    // The deprecated shims stay importable from the prelude; they are
    // all defined in the `compat` module of their crate
    // (`proxima_mbpta::compat`, `proxima_stream::compat`), which is the
    // single place the deprecation surface is maintained.
    #[allow(deprecated)]
    pub use deprecated_shims::*;
    pub use proxima_mbpta::persist::{Decode, Encode};
    pub use proxima_mbpta::session::SessionVerdict;
    pub use proxima_mbpta::{
        baseline::MbtaEstimate, confidence::budget_interval, cv::analyze_cv, render_report,
        AnalysisSession, BlockSpec, Campaign, CampaignRunner, ChannelHandle, ChannelId,
        EngineEstimate, MbptaConfig, MbptaReport, Pipeline, Pwcet, SessionBuilder, SessionSnapshot,
        Tagged, Verdict,
    };
    pub use proxima_prng::{Mwc64, PrngKind, RandomSource};
    pub use proxima_sim::{Inst, InstKind, Platform, PlatformConfig};
    pub use proxima_stats::dist::ContinuousDistribution;
    pub use proxima_stream::persist::{
        load_analyzer, load_federated, save_analyzer, save_federated,
    };
    pub use proxima_stream::{
        FederatedAnalyzer, FederatedConfig, FederatedEngine, LineSource, PwcetSnapshot,
        SessionFederatedExt, SessionStreamExt, StreamAnalyzer, StreamConfig, StreamEngine,
        TraceReplay,
    };
    pub use proxima_workload::bench_suite::Benchmark;
    pub use proxima_workload::tvca::{ControlMode, Scale, Tvca, TvcaConfig};

    /// The deprecated entry points, grouped so the prelude needs exactly
    /// one `#[allow(deprecated)]` no matter how many shims exist.
    #[allow(deprecated)]
    mod deprecated_shims {
        pub use proxima_mbpta::compat::{analyze, measure_and_analyze};
        pub use proxima_stream::compat::PipelineStreamExt;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = PlatformConfig::mbpta_compliant();
        let _ = MbptaConfig::default();
        let _ = ControlMode::Nominal;
        let _ = Benchmark::all();
    }
}
