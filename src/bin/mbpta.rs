//! `mbpta` — command-line probabilistic timing analysis.
//!
//! Reads execution-time measurements (one per line, `#` comments allowed)
//! and runs the MBPTA pipeline on them — the open equivalent of feeding a
//! commercial timing-analysis tool a measurement file.
//!
//! ```text
//! USAGE:
//!   mbpta analyze <file> [--cutoff 1e-12] [--alpha 0.05] [--block N] [--cv] [--csv]
//!   mbpta measure [--runs 3000] [--seed 10000000] [--jobs N] [--path nominal|...]
//!   mbpta stream [<file>] [--target-p 1e-12] [--block 50] [--every 5] [--simulate] [...]
//!   mbpta session [<file>] [--target-p 1e-12] [--batch] [--every 250] [--jobs N]
//!                 [--simulate] [...]
//!   mbpta serve [--addr 127.0.0.1:0] [--checkpoint ck.bin --checkpoint-every 1000] [...]
//!   mbpta call <addr> <ingest|snapshot|verdict|merge|checkpoint|stats|shutdown> [...]
//!   mbpta shard [<file>] --out <blob> [--shards N] [--simulate] [...]
//!   mbpta --help
//! ```
//!
//! `analyze` consumes a measurement file; `measure` generates one from the
//! built-in simulated TVCA campaign; `stream` analyses a single
//! measurement stream incrementally; `session` demultiplexes a **tagged**
//! feed (`<channel> <time>` per line) to one analysis engine per channel
//! — per path, per core, per tenant — and merges the per-channel verdicts
//! into a program-level envelope. `stream` and `session` both run on the
//! multi-channel `AnalysisSession` core. `serve` exposes that same core
//! as a long-running framed-TCP service (`proxima-serve`); `call` is its
//! command-line client; `shard` folds a measurement campaign into a
//! sealed federated state blob that `call merge` ships to a server —
//! state travels, raw measurements do not.

use std::process::ExitCode;

use proxima::mbpta::cv::analyze_cv;
use proxima::mbpta::engine::{BatchFactory, EngineFactory, EngineKind};
use proxima::mbpta::persist;
use proxima::prelude::*;
use proxima::serve::cache::query_key;
use proxima::serve::{Response, ServeClient, ServeConfig, Server, VerdictCache, WireSnapshot};
use proxima::stream::replay::{ByteLines, LineSource, TraceReplay};
use proxima::stream::{FederatedFactory, SketchKind, StreamConfig, StreamFactory};

const USAGE: &str = "\
mbpta - measurement-based probabilistic timing analysis

USAGE:
  mbpta analyze <file> [--cutoff <p>] [--alpha <a>] [--block <n>] [--cv] [--csv]
  mbpta measure [--runs <n>] [--seed <s>] [--jobs <j>] [--path <name>]
  mbpta stream [<file>] [--target-p <p>] [--block <n>] [--every <k>]
               [--sketch <gk|kll>]
               [--simulate] [--runs <n>] [--seed <s>] [--path <name>]
               [--stop-on-converged]
  mbpta session [<file>] [--target-p <p>] [--block <n>] [--every <k>]
                [--sketch <gk|kll>]
                [--batch] [--shards <n>] [--jobs <j>] [--stop-on-converged]
                [--simulate] [--runs <n>] [--seed <s>]
                [--checkpoint <path> --checkpoint-every <k>]
  mbpta session --resume <path> [<file>] [--jobs <j>]
                [--checkpoint <path> --checkpoint-every <k>]
  mbpta serve [--addr <host:port>] [--target-p <p>] [--block <n>] [--every <k>]
              [--sketch <gk|kll>] [--workers <w>] [--max-conns <n>] [--jobs <j>]
              [--cache-capacity <n>] [--cache-ttl <t>]
              [--checkpoint <path> --checkpoint-every <k>]
  mbpta serve --resume <path> [--addr <host:port>] [--workers <w>]
              [--max-conns <n>] [--jobs <j>]
  mbpta call <addr> ingest <channel> [<file>] [--skip <n>] [--chunk <n>]
  mbpta call <addr> snapshot <channel>
  mbpta call <addr> verdict [--p <p>] [--channel <name>]
  mbpta call <addr> merge <channel> <blob-file>
  mbpta call <addr> checkpoint | stats | shutdown
  mbpta shard [<file>] --out <blob> [--shards <n>] [--target-p <p>] [--block <n>]
              [--sketch <gk|kll>]
              [--simulate] [--runs <n>] [--seed <s>] [--path <name>]
  mbpta --help

COMMANDS:
  analyze   run the MBPTA pipeline on a measurement file
            (one execution time per line; '#' starts a comment)
  measure   print a synthetic TVCA campaign in that format (simulated
            MBPTA-compliant platform; paths: nominal, saturated-x,
            saturated-y, fault-recovery)
  stream    incremental MBPTA over a single measurement stream: ingest
            from <file>, stdin (no file argument), or the simulator
            (--simulate); print a pWCET snapshot at every refit
  session   multi-channel MBPTA over a *tagged* feed (`<channel> <time>`
            or `<channel>,<time>` per line) from <file>, stdin, or the
            simulator (--simulate: the four TVCA paths measured in one
            thread pool); one engine per channel, merged envelope at the
            end
  serve     long-running framed-TCP analysis service over the same
            session core: concurrent clients ingest tagged batches,
            query snapshots/verdicts (cached), merge sealed federated
            shard blobs, and trigger checkpoints; prints
            `listening on <addr>` once ready
  call      client for a running server: ingest a measurement file (one
            value per line) into a channel, query a snapshot or verdict,
            merge a shard blob, force a checkpoint, dump stats, or shut
            the server down
  shard     fold a measurement campaign into a sealed federated state
            blob (`save_federated` format) for `call merge`; the
            stream/block configuration must match the server's

OPTIONS (analyze):
  --cutoff <p>   exceedance probability for the headline budget [1e-12]
  --alpha <a>    significance level of the i.i.d. gate          [0.05]
  --block <n>    fixed block size (default: automatic selection)
  --cv           use MBPTA-CV (exponential tail) instead of block maxima
  --csv          also print the pWCET curve as CSV

OPTIONS (measure):
  --runs <n>     number of measured executions                  [3000]
  --seed <s>     base seed of the campaign                      [10000000]
  --jobs <j>     measure on <j> threads (0 = all cores); the
                 sharded campaign is bit-identical for every
                 <j>, but uses the SplitMix64 seed stream
                 instead of the sequential per-run seeds
  --path <name>  TVCA execution path                            [nominal]

OPTIONS (stream):
  --target-p <p>       exceedance cutoff tracked by snapshots   [1e-12]
  --block <n>          block size for block maxima              [50]
  --every <k>          refit every <k> completed blocks         [5]
  --sketch <gk|kll>    quantile-sketch algorithm: gk (tight
                       deterministic rank bounds) or kll
                       (smaller summaries under deep merges);
                       both are bit-deterministic              [gk]
  --simulate           measure the TVCA live instead of reading
  --runs <n>           simulated runs (with --simulate)         [3000]
  --seed <s>           simulation master seed                   [10000000]
  --path <name>        TVCA execution path (with --simulate)    [nominal]
  --stop-on-converged  stop ingesting once the estimate is stable

OPTIONS (session):
  --target-p <p>       exceedance cutoff tracked by snapshots   [1e-12]
  --block <n>          block size for block maxima              [50]
  --every <k>          emit a snapshot every <k> measurements,
                       round-robin across channels (0 = off)    [250]
  --sketch <gk|kll>    quantile-sketch algorithm for the streaming
                       engines (not valid with --batch); the report
                       stays bit-identical at every shard/job
                       count for both                           [gk]
  --batch              buffer per channel and analyse at the end
                       (default: bounded-memory streaming engines)
  --shards <n>         back each channel with <n> federated stream
                       shards folded at the end; the report is
                       bit-identical at every shard count (0 = off;
                       not valid with --stop-on-converged)          [0]
  --jobs <j>           merge/measure worker threads (0 = all)   [0]
  --simulate           feed the four TVCA paths as channels,
                       measured in one thread pool
  --runs <n>           simulated runs per path (--simulate)     [1500]
  --seed <s>           simulation master seed                   [10000000]
  --stop-on-converged  stop once every channel's estimate is stable;
                       converged channels finish early and free
                       their engine state immediately
  --cache-stats        print verdict-cache hit/miss counters for the
                       final summary to stderr

OPTIONS (serve):
  --addr <host:port>     bind address (port 0 = OS-assigned)  [127.0.0.1:0]
  --target-p <p>         exceedance cutoff                    [1e-12]
  --block <n>            block size for block maxima          [50]
  --every <k>            per-channel snapshot cadence         [250]
  --sketch <gk|kll>      quantile-sketch algorithm            [gk]
  --workers <w>          analysis worker threads; channels are
                         partitioned across workers by name hash,
                         and every response is bit-identical at
                         every worker count                   [1]
  --max-conns <n>        concurrent-connection bound; excess
                         connections get a typed BUSY frame
                         (0 = unbounded)                      [0]
  --jobs <j>             merge worker threads per session shard
                         (0 = all cores)                      [0]
  --cache-capacity <n>   cached query responses *per worker*  [256]
  --cache-ttl <t>        expire cache entries untouched for <t>
                         ingest batches (0 = never)           [0]
  --checkpoint <path>    auto-checkpoint target: one sealed blob
                         per worker plus a manifest, atomically
                         committed by the manifest rename
  --checkpoint-every <k> checkpoint cadence, in measurements
  --resume <path>        restart from a server checkpoint; the analysis
                         configuration comes from the manifest, and
                         checkpointing continues to the same path.
                         --workers re-partitions the restored channels
                         to a new worker count (0 = keep the count
                         recorded in the manifest) — bit-identically
  --crash-after <n>      abort once the session holds <n> measurements
                         (crash injection for the restart CI job)

OPTIONS (call):
  --skip <n>     ingest: skip the first <n> measurements of the file
                 (resend-after-restart: skip what the server already
                 holds, per `call stats`)                        [0]
  --chunk <n>    ingest: measurements per INGEST frame           [512]
  --p <p>        verdict: exceedance cutoff                      [1e-12]
  --channel <c>  verdict: restrict to one channel (default: all)

OPTIONS (shard):
  --out <blob>   output file for the sealed federated blob (required)
  --shards <n>   shard count; the folded state is bit-identical
                 for every value                                 [1]
  --target-p, --block, --sketch, --simulate, --runs, --seed, --path: as
                 above; the stream configuration (including the sketch
                 algorithm) must match the server's

CHECKPOINT / RESUME (session):
  --checkpoint <path>      write a checkpoint of the full session state
                           to <path> (atomic write-rename: a crash
                           mid-write never corrupts the file)
  --checkpoint-every <k>   checkpoint cadence, in measurements; required
                           with --checkpoint
  --resume <path>          resume a checkpointed session; the engine and
                           analysis flags are read from the file, so
                           they must not be repeated (re-supply the
                           measurement file for file feeds; a simulated
                           feed is regenerated from the recorded
                           runs/seed). The resumed report is
                           bit-identical to an uninterrupted run.
  --crash-after <n>        abort the process after <n> measurements —
                           a deterministic crash injector for the
                           restart-determinism CI job
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `mbpta --help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("measure") => measure_cmd(&args[1..]),
        Some("stream") => stream_cmd(&args[1..]),
        Some("session") => session_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("call") => call_cmd(&args[1..]),
        Some("shard") => shard_cmd(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

/// Parse `--flag value` pairs after the positional arguments.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value for {flag}: `{raw}`")),
    }
}

/// Parse `--sketch {gk,kll}`: the quantile-sketch algorithm the
/// streaming engines maintain. The error names the accepted values —
/// a generic "invalid value" would leave the user guessing.
fn parse_sketch(args: &[String]) -> Result<SketchKind, String> {
    match flag_value(args, "--sketch")? {
        None => Ok(SketchKind::default()),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value for --sketch: `{raw}` (expected `gk` or `kll`)")),
    }
}

/// Flags that take no value: an argument following one of these is a
/// positional argument, not the flag's value.
const BOOLEAN_FLAGS: &[&str] = &[
    "--cv",
    "--csv",
    "--simulate",
    "--stop-on-converged",
    "--batch",
    "--cache-stats",
];

/// Every positional (non-flag) argument, in order (`call` takes several).
fn positionals(args: &[String]) -> Vec<&str> {
    args.iter()
        .filter(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .map(String::as_str)
        .collect()
}

/// `true` if `candidate` is the value of some value-taking `--flag` (so it
/// is not the positional file argument).
fn is_flag_value(args: &[String], candidate: &str) -> bool {
    args.windows(2).any(|w| {
        w[0].starts_with("--") && !BOOLEAN_FLAGS.contains(&w[0].as_str()) && w[1] == candidate
    })
}

/// The positional (non-flag) argument, if any.
fn positional(args: &[String]) -> Option<&String> {
    args.iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
}

fn parse_tvca_mode(path: &str) -> Result<ControlMode, String> {
    match path {
        "nominal" => Ok(ControlMode::Nominal),
        "saturated-x" => Ok(ControlMode::SaturatedX),
        "saturated-y" => Ok(ControlMode::SaturatedY),
        "fault-recovery" => Ok(ControlMode::FaultRecovery),
        other => Err(format!("unknown path `{other}`")),
    }
}

/// The simulated trace source shared by `measure`, `stream --simulate`
/// and `session --simulate`: runs/seed/path flags plus the TVCA trace of
/// the chosen path on the MBPTA-compliant platform.
struct SimSource {
    runs: usize,
    seed: u64,
    mode: ControlMode,
    trace: Vec<Inst>,
}

/// Shared `--runs`/`--seed` parsing for every simulate-capable
/// subcommand (`measure`, `stream --simulate`, `session --simulate`).
fn sim_params(args: &[String], default_runs: usize) -> Result<(usize, u64), String> {
    let runs: usize = parse_flag(args, "--runs", default_runs)?;
    let seed: u64 = parse_flag(args, "--seed", 10_000_000u64)?;
    Ok((runs, seed))
}

impl SimSource {
    fn from_args(args: &[String], default_runs: usize) -> Result<Self, String> {
        let (runs, seed) = sim_params(args, default_runs)?;
        let mode = parse_tvca_mode(flag_value(args, "--path")?.unwrap_or("nominal"))?;
        Ok(SimSource::new(runs, seed, mode))
    }

    fn new(runs: usize, seed: u64, mode: ControlMode) -> Self {
        let tvca = Tvca::new(TvcaConfig::default());
        SimSource {
            runs,
            seed,
            mode,
            trace: tvca.trace(mode),
        }
    }

    /// Stream the campaign run by run (the `stream --simulate` source).
    fn replay(&self) -> TraceReplay {
        TraceReplay::new(
            PlatformConfig::mbpta_compliant(),
            self.trace.clone(),
            self.runs,
            self.seed,
        )
    }
}

fn analyze_cmd(args: &[String]) -> Result<(), String> {
    let file = positional(args).ok_or("analyze needs a measurement file")?;
    let cutoff: f64 = parse_flag(args, "--cutoff", 1e-12)?;
    let alpha: f64 = parse_flag(args, "--alpha", 0.05)?;
    let use_cv = args.iter().any(|a| a == "--cv");
    let want_csv = args.iter().any(|a| a == "--csv");

    let reader = std::fs::File::open(file).map_err(|e| format!("cannot open {file}: {e}"))?;
    let campaign = Campaign::from_reader(reader).map_err(|e| e.to_string())?;

    let mut config = MbptaConfig {
        alpha,
        ..MbptaConfig::default()
    };
    if let Some(block) = flag_value(args, "--block")? {
        let n: usize = block
            .parse()
            .map_err(|_| format!("invalid block size `{block}`"))?;
        config.block = BlockSpec::Fixed(n);
    }

    if use_cv {
        let report = analyze_cv(campaign.times(), &config).map_err(|e| e.to_string())?;
        println!(
            "MBPTA-CV: threshold {:.0}, {} exceedances, residual CV {:.3}",
            report.fit.threshold, report.fit.tail_size, report.fit.cv
        );
        println!(
            "i.i.d. gate: Ljung-Box p={:.3}, KS p={:.3}",
            report.iid.ljung_box.p_value, report.iid.ks.p_value
        );
        let budget = report.budget_for(cutoff).map_err(|e| e.to_string())?;
        println!("pWCET @ {cutoff:e}: {budget:.0}");
    } else {
        let report = Pipeline::new(config)
            .analyze(campaign.times())
            .map_err(|e| e.to_string())?;
        print!("{}", render_report(&report));
        let budget = report.budget_for(cutoff).map_err(|e| e.to_string())?;
        println!("headline budget @ {cutoff:e}: {budget:.0}");
        if want_csv {
            let probs: Vec<f64> = (3..=15).map(|e| 10f64.powi(-e)).collect();
            let csv =
                proxima::mbpta::render_pwcet_csv(&report, &probs).map_err(|e| e.to_string())?;
            print!("{csv}");
        }
    }
    Ok(())
}

fn measure_cmd(args: &[String]) -> Result<(), String> {
    let sim = SimSource::from_args(args, 3000)?;
    let jobs = flag_value(args, "--jobs")?
        .map(|raw| {
            raw.parse::<usize>()
                .map_err(|_| format!("invalid value for --jobs: `{raw}`"))
        })
        .transpose()?;
    // Measure first, print after: a failed campaign must not leave a
    // partial (headers-only) measurement file on stdout.
    let (campaign, seed_line) = if let Some(jobs) = jobs {
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant()).with_jobs(jobs);
        let campaign = runner
            .run(&sim.trace, sim.runs, sim.seed)
            .map_err(|e| e.to_string())?;
        let line = format!(
            "# runs={} master_seed={} jobs={}",
            sim.runs,
            sim.seed,
            runner.jobs()
        );
        (campaign, line)
    } else {
        let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
        let campaign = Campaign::measure(&mut platform, &sim.trace, sim.runs, sim.seed)
            .map_err(|e| e.to_string())?;
        (
            campaign,
            format!("# runs={} base_seed={}", sim.runs, sim.seed),
        )
    };
    println!(
        "# TVCA path `{}` on the simulated MBPTA-compliant platform",
        sim.mode
    );
    println!("{seed_line}");
    campaign.write_to(std::io::stdout().lock()).or_else(|e| {
        // A downstream consumer closing early (`measure | stream
        // --stop-on-converged`, `measure | head`) is a normal way for
        // this pipeline to end, not a measurement failure.
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            Ok(())
        } else {
            Err(e.to_string())
        }
    })
}

/// One printed line per estimate, compact enough to tail live. Unlike
/// `println!`, a closed stdout surfaces as an error the caller can treat
/// as end-of-interest, not a panic.
fn print_estimate(
    channel: Option<&ChannelId>,
    target_p: f64,
    est: &EngineEstimate,
) -> std::io::Result<()> {
    use std::io::Write;
    let delta = est
        .convergence_delta
        .map_or("-".to_string(), |d| format!("{:.3}%", d * 100.0));
    let ci = est.ci.map_or("-".to_string(), |ci| {
        format!("[{:.0}, {:.0}]", ci.lower, ci.upper)
    });
    let channel = channel.map_or(String::new(), |c| format!("channel={c} "));
    writeln!(
        std::io::stdout().lock(),
        "snapshot {channel}n={} blocks={} pwcet@{target_p:e}={:.0} ci={ci} delta={delta} hwm={:.0} iid={} {}",
        est.n,
        est.blocks.unwrap_or(0),
        est.pwcet,
        est.high_watermark,
        est.iid.map_or("-", |evidence| evidence.label()),
        if est.converged { "CONVERGED" } else { "settling" },
    )
}

/// `Ok(false)` when stdout closed (downstream `| head`): a normal way for
/// a live tail to end.
fn emit_estimate(
    channel: Option<&ChannelId>,
    target_p: f64,
    est: &EngineEstimate,
) -> Result<bool, String> {
    match print_estimate(channel, target_p, est) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(false),
        Err(e) => Err(e.to_string()),
    }
}

fn stream_cmd(args: &[String]) -> Result<(), String> {
    let target_p: f64 = parse_flag(args, "--target-p", 1e-12)?;
    let block: usize = parse_flag(args, "--block", 50)?;
    let every: usize = parse_flag(args, "--every", 5)?;
    let sketch = parse_sketch(args)?;
    let simulate = args.iter().any(|a| a == "--simulate");
    let stop_on_converged = args.iter().any(|a| a == "--stop-on-converged");
    if !simulate {
        // Silently dropping these would leave the user blocked on stdin
        // wondering why their flags did nothing.
        for flag in ["--runs", "--seed", "--path"] {
            if args.iter().any(|a| a == flag) {
                return Err(format!("{flag} requires --simulate"));
            }
        }
    }

    let config = StreamConfig {
        block_size: block,
        refit_every_blocks: every,
        target_p,
        sketch,
        ..StreamConfig::default()
    };
    // A single-channel session over the streaming engine: polled every
    // measurement, the scheduler re-emits exactly the analyzer's refit
    // snapshots.
    let mut session = MbptaConfig::default()
        .session()
        .snapshot_every(1)
        .build_stream_with(config) // `config` already carries target_p
        .map_err(|e| e.to_string())?;

    let source: Box<dyn Iterator<Item = Result<f64, String>>> = if simulate {
        let sim = SimSource::from_args(args, 3000)?;
        eprintln!(
            "streaming {} simulated runs of TVCA path `{}` (seed {})",
            sim.runs, sim.mode, sim.seed
        );
        Box::new(sim.replay().map(Ok))
    } else {
        match positional(args) {
            Some(file) => {
                let f =
                    std::fs::File::open(file).map_err(|e| format!("cannot open {file}: {e}"))?;
                Box::new(
                    LineSource::new(std::io::BufReader::new(f))
                        .map(|r| r.map_err(|e| e.to_string())),
                )
            }
            None => Box::new(
                LineSource::new(std::io::BufReader::new(std::io::stdin()))
                    .map(|r| r.map_err(|e| e.to_string())),
            ),
        }
    };

    let channel = ChannelId::new("stream");
    let mut snapshots = 0usize;
    let mut converged_at: Option<usize> = None;
    if stop_on_converged {
        // Convergence-gated stopping is measurement-granular — the feed
        // must stop at exactly the converging measurement — so this mode
        // keeps the per-item path.
        for x in source {
            let snap = session
                .push(Tagged::new(channel.clone(), x?))
                .map_err(|e| e.to_string())?;
            if let Some(snap) = snap {
                snapshots += 1;
                if snap.estimate.converged && converged_at.is_none() {
                    converged_at = Some(snap.estimate.n);
                }
                if !emit_estimate(None, target_p, &snap.estimate)? {
                    return Ok(());
                }
                if snap.estimate.converged {
                    break;
                }
            }
        }
    } else {
        // Bulk path: chunk the feed through `push_batch`, which is
        // bit-identical to the per-item loop (same snapshots, same final
        // state) but amortizes sketch and scheduler maintenance.
        let mut source = source;
        let mut chunk: Vec<f64> = Vec::with_capacity(FEED_CHUNK);
        let mut feed_err: Option<String> = None;
        let mut ended = false;
        while !ended {
            chunk.clear();
            while chunk.len() < FEED_CHUNK {
                match source.next() {
                    Some(Ok(x)) => chunk.push(x),
                    Some(Err(e)) => {
                        feed_err = Some(e);
                        ended = true;
                        break;
                    }
                    None => {
                        ended = true;
                        break;
                    }
                }
            }
            let snaps = session
                .push_batch(channel.clone(), &chunk)
                .map_err(|e| e.to_string())?;
            for snap in snaps {
                snapshots += 1;
                if snap.estimate.converged && converged_at.is_none() {
                    converged_at = Some(snap.estimate.n);
                }
                if !emit_estimate(None, target_p, &snap.estimate)? {
                    return Ok(());
                }
            }
            if let Some(e) = feed_err {
                // Measurements before the bad line are already analysed
                // and their snapshots printed — same as the per-item loop.
                return Err(e);
            }
        }
    }
    let merged = session.merge();
    let verdict = merged
        .verdict(channel.as_str())
        .expect("single-channel session")
        .as_ref()
        .map_err(|e| e.to_string())?;
    {
        use std::io::Write;
        let result = writeln!(
            std::io::stdout().lock(),
            "final n={} blocks={} pwcet@{target_p:e}={:.0} hwm={:.0} snapshots={snapshots} converged={}",
            verdict.provenance.n,
            verdict.fit.n_maxima,
            verdict.budget_for(target_p).map_err(|e| e.to_string())?,
            verdict.high_watermark(),
            converged_at.map_or("no".to_string(), |at| format!("at n={at}")),
        );
        match result {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(())
}

/// The four TVCA paths, as session channels.
const TVCA_PATHS: &[(&str, ControlMode)] = &[
    ("nominal", ControlMode::Nominal),
    ("saturated-x", ControlMode::SaturatedX),
    ("saturated-y", ControlMode::SaturatedY),
    ("fault-recovery", ControlMode::FaultRecovery),
];

/// Everything `--resume` needs to rebuild a session besides the session
/// blob itself: the engine selection, the analysis knobs, and (for
/// simulated feeds) the campaign parameters.
#[derive(Debug, Clone, PartialEq)]
struct SessionParams {
    kind: EngineKind,
    block: usize,
    target_p: f64,
    every: usize,
    shards: usize,
    /// Quantile-sketch algorithm of the streaming engines (`--sketch`);
    /// recorded so a resumed run rebuilds the same engine configuration.
    sketch: SketchKind,
    stop_on_converged: bool,
    /// `Some((runs, seed))` when the feed is the built-in simulator.
    sim: Option<(usize, u64)>,
}

/// Magic tag of a `mbpta session` checkpoint file (which wraps the
/// library's session blob together with the CLI parameters).
const MAGIC_CLI_CHECKPOINT: [u8; 4] = *b"PXCP";

impl SessionParams {
    fn encode(&self, w: &mut persist::Writer) {
        persist::Encode::encode(&self.kind, w);
        w.usize(self.block);
        w.f64(self.target_p);
        w.usize(self.every);
        w.usize(self.shards);
        persist::Encode::encode(&self.sketch, w);
        w.bool(self.stop_on_converged);
        match self.sim {
            None => w.bool(false),
            Some((runs, seed)) => {
                w.bool(true);
                w.usize(runs);
                w.u64(seed);
            }
        }
    }

    fn decode(r: &mut persist::Reader<'_>) -> Result<Self, String> {
        let mut take = || -> Result<SessionParams, proxima::mbpta::MbptaError> {
            Ok(SessionParams {
                kind: persist::Decode::decode(r)?,
                block: r.usize()?,
                target_p: r.f64()?,
                every: r.usize()?,
                shards: r.usize()?,
                sketch: persist::Decode::decode(r)?,
                stop_on_converged: r.bool()?,
                sim: if r.bool()? {
                    Some((r.usize()?, r.u64()?))
                } else {
                    None
                },
            })
        };
        take().map_err(|e| e.to_string())
    }
}

/// Write a session checkpoint file atomically and durably: serialize to
/// `<path>.tmp` in the same directory, fsync it, rename over `<path>`,
/// then fsync the directory — a crash (or power cut) mid-write leaves
/// either the previous checkpoint or the new one, never a torn file.
fn write_checkpoint<F: EngineFactory>(
    path: &str,
    params: &SessionParams,
    session: &mut AnalysisSession<F>,
) -> Result<(), String> {
    use std::io::Write;
    let blob = session
        .checkpoint()
        .map_err(|e| format!("cannot checkpoint session: {e}"))?;
    let mut w = persist::Writer::new();
    params.encode(&mut w);
    w.usize(session.len());
    w.bytes(&blob);
    let bytes = persist::seal(MAGIC_CLI_CHECKPOINT, w.into_bytes());
    let tmp = format!("{path}.tmp");
    let mut file = std::fs::File::create(&tmp).map_err(|e| format!("cannot create {tmp}: {e}"))?;
    file.write_all(&bytes)
        .map_err(|e| format!("cannot write {tmp}: {e}"))?;
    // The rename only renames metadata; without flushing the data first,
    // a power cut shortly after the rename could leave the *new* name
    // pointing at an empty/partial file with the old checkpoint gone.
    file.sync_all()
        .map_err(|e| format!("cannot sync {tmp}: {e}"))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp} over {path}: {e}"))?;
    // Persist the rename itself (best effort — directory fsync is not
    // supported everywhere).
    if let Some(parent) = std::path::Path::new(path).parent() {
        let dir = if parent.as_os_str().is_empty() {
            std::path::Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    // Reset the session's cadence counter ([`AnalysisSession::
    // checkpoint_due`]) so the next checkpoint falls due a full period
    // from here.
    session.mark_checkpointed();
    Ok(())
}

/// Read a session checkpoint file: `(params, measurements consumed,
/// session blob)`.
fn read_checkpoint(path: &str) -> Result<(SessionParams, usize, Vec<u8>), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let payload = persist::unseal(&bytes, MAGIC_CLI_CHECKPOINT).map_err(|e| e.to_string())?;
    let mut r = persist::Reader::new(payload);
    let params = SessionParams::decode(&mut r)?;
    let consumed = r.usize().map_err(|e| e.to_string())?;
    let blob = r.bytes().map_err(|e| e.to_string())?.to_vec();
    r.finish().map_err(|e| e.to_string())?;
    Ok((params, consumed, blob))
}

/// Parse and validate the `--checkpoint`/`--checkpoint-every` pair.
fn checkpoint_spec(args: &[String]) -> Result<Option<(String, usize)>, String> {
    let path = flag_value(args, "--checkpoint")?;
    let every: Option<usize> = flag_value(args, "--checkpoint-every")?
        .map(|raw| {
            raw.parse()
                .map_err(|_| format!("invalid value for --checkpoint-every: `{raw}`"))
        })
        .transpose()?;
    match (path, every) {
        (None, None) => Ok(None),
        (Some(_), None) => Err("--checkpoint requires --checkpoint-every".into()),
        (None, Some(_)) => Err("--checkpoint-every requires --checkpoint".into()),
        (Some(_), Some(0)) => Err("--checkpoint-every must be positive".into()),
        (Some(path), Some(every)) => Ok(Some((path.to_string(), every))),
    }
}

fn session_cmd(args: &[String]) -> Result<(), String> {
    let jobs: usize = parse_flag(args, "--jobs", 0)?;
    let cache_stats = args.iter().any(|a| a == "--cache-stats");
    let ckpt = checkpoint_spec(args)?;
    let crash_after: Option<usize> = flag_value(args, "--crash-after")?
        .map(|raw| {
            raw.parse()
                .map_err(|_| format!("invalid value for --crash-after: `{raw}`"))
        })
        .transpose()?;

    if let Some(resume_path) = flag_value(args, "--resume")? {
        // The checkpoint records the full session configuration;
        // re-specifying engine or analysis flags would either be
        // redundant or silently conflict with the recorded state.
        for flag in [
            "--batch",
            "--shards",
            "--block",
            "--every",
            "--target-p",
            "--sketch",
            "--stop-on-converged",
            "--simulate",
            "--runs",
            "--seed",
            "--path",
        ] {
            if args.iter().any(|a| a == flag) {
                return Err(format!(
                    "{flag} conflicts with --resume (the checkpoint already records \
                     the session configuration)"
                ));
            }
        }
        let (params, consumed, blob) = read_checkpoint(resume_path)?;
        eprintln!("resuming from {resume_path}: {consumed} measurements already analysed",);
        return run_session(
            args,
            &params,
            jobs,
            consumed,
            Some(&blob),
            ckpt.as_ref(),
            crash_after,
            cache_stats,
        );
    }

    let target_p: f64 = parse_flag(args, "--target-p", 1e-12)?;
    let block: usize = parse_flag(args, "--block", 50)?;
    let every: usize = parse_flag(args, "--every", 250)?;
    let shards: usize = parse_flag(args, "--shards", 0)?;
    let sketch = parse_sketch(args)?;
    let batch = args.iter().any(|a| a == "--batch");
    let simulate = args.iter().any(|a| a == "--simulate");
    let stop_on_converged = args.iter().any(|a| a == "--stop-on-converged");
    if shards > 0 && batch {
        return Err("--shards applies to the streaming engines; drop --batch".into());
    }
    // The batch engine buffers raw measurements and never builds a
    // sketch; silently accepting the flag would let the user believe it
    // took effect.
    if batch && args.iter().any(|a| a == "--sketch") {
        return Err("--sketch applies to the streaming engines; drop --batch".into());
    }
    // Shards fold at the end and only track per-shard stability, which
    // depends on the shard geometry: convergence-gated stopping would
    // make the report depend on the shard count, breaking the federated
    // determinism guarantee. Reject the combination loudly.
    if shards > 0 && stop_on_converged {
        return Err(
            "--stop-on-converged is not valid with --shards (federated shards fold at the \
             end; convergence-gated stopping needs the single-stream engines)"
                .into(),
        );
    }
    // An explicitly requested snapshot cadence would be silently inert:
    // federated engines emit no intermediate estimates (the global
    // estimate exists only at fold time). Say so instead of going quiet.
    if shards > 0 && args.iter().any(|a| a == "--every") {
        eprintln!(
            "note: --every has no effect with --shards \
             (federated channels emit no intermediate snapshots)"
        );
    }
    if !simulate {
        for flag in ["--runs", "--seed"] {
            if args.iter().any(|a| a == flag) {
                return Err(format!("{flag} requires --simulate"));
            }
        }
    }
    // A session has no single path: silently dropping the flag would run
    // all four TVCA paths while the user expects one.
    if args.iter().any(|a| a == "--path") {
        return Err(
            "--path is not valid for session (all TVCA paths are measured as channels; \
             use `stream --simulate --path <name>` for a single path)"
                .into(),
        );
    }

    let params = SessionParams {
        kind: if batch {
            EngineKind::Batch
        } else if shards > 0 {
            EngineKind::Federated
        } else {
            EngineKind::Stream
        },
        block,
        target_p,
        every,
        shards,
        sketch,
        stop_on_converged,
        sim: if simulate {
            Some(sim_params(args, 1500)?)
        } else {
            None
        },
    };
    run_session(
        args,
        &params,
        jobs,
        0,
        None,
        ckpt.as_ref(),
        crash_after,
        cache_stats,
    )
}

/// Build the tagged feed a session analyses — the simulated four-path
/// TVCA campaign when `params.sim` is set, a tagged file/stdin otherwise
/// — skipping the first `consumed` measurements (already analysed by a
/// checkpointed run being resumed).
fn session_feed(
    args: &[String],
    params: &SessionParams,
    jobs: usize,
    consumed: usize,
) -> Result<Box<dyn Iterator<Item = Result<Tagged, String>>>, String> {
    if let Some((runs, seed)) = params.sim {
        // All four TVCA paths measured in ONE thread pool (`run_many`
        // shards the 4 × runs indices over the workers), then replayed
        // into the session as a round-robin interleaved tagged feed —
        // the demux workload end to end. The campaign is a pure function
        // of (runs, seed), so a resumed run regenerates the identical
        // feed and skips what the checkpoint already covered.
        let tvca = Tvca::new(TvcaConfig::default());
        let traces: Vec<Vec<Inst>> = TVCA_PATHS.iter().map(|(_, m)| tvca.trace(*m)).collect();
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant()).with_jobs(jobs);
        eprintln!(
            "measuring {runs} runs of {} TVCA paths in one pool (seed {seed}, jobs {})",
            TVCA_PATHS.len(),
            runner.jobs()
        );
        let campaigns = runner
            .run_many(&traces, runs, seed)
            .map_err(|e| e.to_string())?;
        let channels: Vec<ChannelId> = TVCA_PATHS
            .iter()
            .map(|(name, _)| ChannelId::new(name))
            .collect();
        let mut tagged: Vec<Tagged> = Vec::with_capacity(TVCA_PATHS.len() * runs);
        for i in 0..runs {
            for (channel, campaign) in channels.iter().zip(&campaigns) {
                tagged.push(Tagged::new(channel.clone(), campaign.times()[i]));
            }
        }
        Ok(Box::new(tagged.into_iter().map(Ok).skip(consumed)))
    } else {
        let reader: Box<dyn std::io::BufRead> = match positional(args) {
            Some(file) => Box::new(std::io::BufReader::new(
                std::fs::File::open(file).map_err(|e| format!("cannot open {file}: {e}"))?,
            )),
            None => Box::new(std::io::BufReader::new(std::io::stdin())),
        };
        Ok(Box::new(tagged_lines(reader).skip(consumed)))
    }
}

/// Restore a checkpointed session and re-arm its checkpoint cadence:
/// the cadence is runtime policy (`--checkpoint-every` on this
/// invocation), not part of the persisted state, so a restore always
/// re-applies it. Restores land exactly on a cadence boundary (chunks
/// never cross one), so the next checkpoint falls a full period later —
/// the file sequence is identical to an uninterrupted run.
fn restore_session<F: EngineFactory>(
    factory: F,
    blob: &[u8],
    jobs: usize,
    cadence: usize,
) -> Result<AnalysisSession<F>, String> {
    let mut session = AnalysisSession::restore(factory, blob, jobs).map_err(|e| e.to_string())?;
    session.set_checkpoint_every(cadence);
    Ok(session)
}

/// Build (or restore, when `resume_blob` is set) the session described
/// by `params` and drive the feed through it.
#[allow(clippy::too_many_arguments)]
fn run_session(
    args: &[String],
    params: &SessionParams,
    jobs: usize,
    consumed: usize,
    resume_blob: Option<&[u8]>,
    ckpt: Option<&(String, usize)>,
    crash_after: Option<usize>,
    cache_stats: bool,
) -> Result<(), String> {
    let feed = session_feed(args, params, jobs, consumed)?;
    // The checkpoint cadence lives on the session itself (satellite of
    // PR 7): `until_checkpoint`/`checkpoint_due` drive both this CLI and
    // the `serve` subsystem from the same counter.
    let cadence = ckpt.map_or(0, |(_, every)| *every);
    let builder = MbptaConfig {
        block: BlockSpec::Fixed(params.block),
        ..MbptaConfig::default()
    }
    .session()
    .snapshot_every(params.every)
    .checkpoint_every(cadence)
    .target_p(params.target_p)
    .jobs(jobs)
    // Converged channels free their engine state immediately; the feed
    // keeps going until every channel converged (or runs out).
    .early_finish(params.stop_on_converged);

    let stream_config = StreamConfig {
        block_size: params.block,
        target_p: params.target_p,
        sketch: params.sketch,
        ..StreamConfig::default()
    };
    match params.kind {
        EngineKind::Batch => {
            let config = MbptaConfig {
                block: BlockSpec::Fixed(params.block),
                ..MbptaConfig::default()
            };
            let factory = BatchFactory::new(config, params.target_p).map_err(|e| e.to_string())?;
            let session = match resume_blob {
                Some(blob) => restore_session(factory, blob, jobs, cadence)?,
                None => builder.build_with(factory).map_err(|e| e.to_string())?,
            };
            drive_session(session, feed, params, ckpt, crash_after, cache_stats)
        }
        EngineKind::Federated => {
            // Federated: each channel routed to per-shard analyzers
            // folded at merge. With a known per-channel volume
            // (--simulate) the shards are balanced; for files/stdin the
            // default block-aligned shard length applies. Reports are
            // bit-identical at every shard count.
            let mut config = FederatedConfig::new(stream_config, params.shards);
            if let Some((runs, _)) = params.sim {
                config = config.balanced_for(runs);
            }
            let factory = FederatedFactory::new(config).map_err(|e| e.to_string())?;
            let session = match resume_blob {
                Some(blob) => restore_session(factory, blob, jobs, cadence)?,
                None => builder.build_with(factory).map_err(|e| e.to_string())?,
            };
            drive_session(session, feed, params, ckpt, crash_after, cache_stats)
        }
        EngineKind::Stream => {
            let factory = StreamFactory::new(stream_config).map_err(|e| e.to_string())?;
            let session = match resume_blob {
                Some(blob) => restore_session(factory, blob, jobs, cadence)?,
                None => builder.build_with(factory).map_err(|e| e.to_string())?,
            };
            drive_session(session, feed, params, ckpt, crash_after, cache_stats)
        }
        // `EngineKind` is #[non_exhaustive]: a kind added by a future
        // library version has no CLI wiring here yet.
        other => Err(format!("engine kind `{other}` has no session wiring")),
    }
}

/// How many measurements the CLI buffers per `push_batch` call. Large
/// enough to amortize sketch compaction and scheduler scans, small enough
/// to keep live tails responsive on slow feeds.
const FEED_CHUNK: usize = 4096;

/// Parse a tagged-line reader (`<channel> <time>`, blank lines and `#`
/// comments skipped) into a feed. Zero-copy: each line is parsed as a
/// byte slice straight out of the reader's buffer ([`ByteLines`]), with
/// no intermediate `String` per line.
fn tagged_lines(reader: impl std::io::BufRead) -> impl Iterator<Item = Result<Tagged, String>> {
    let mut lines = ByteLines::new(reader);
    std::iter::from_fn(move || loop {
        match lines.next_line(|line_no, bytes| {
            let trimmed = bytes.trim_ascii();
            if trimmed.is_empty() || trimmed.first() == Some(&b'#') {
                return None;
            }
            Some(match std::str::from_utf8(trimmed) {
                Err(_) => Err(format!("bad tagged line {line_no}: not valid UTF-8")),
                Ok(text) => text
                    .parse::<Tagged>()
                    .map_err(|e| format!("bad tagged line {line_no} `{text}`: {e}")),
            })
        }) {
            Err(e) => return Some(Err(format!("tagged stream read failed: {e}"))),
            Ok(None) => return None,
            Ok(Some(None)) => continue,
            Ok(Some(Some(parsed))) => return Some(parsed),
        }
    })
}

/// Bulk-ingest one same-channel run of measurements, emitting scheduled
/// snapshots and honouring the checkpoint / crash-injection cadence
/// exactly as the per-item loop does: no chunk ever crosses a checkpoint
/// boundary or the crash point, so the checkpoint file sequence, the
/// crash position and the printed snapshots are all byte-identical to an
/// itemized feed. `Ok(false)` means stdout closed (downstream `| head`).
fn feed_run<F: EngineFactory>(
    session: &mut AnalysisSession<F>,
    channel: &ChannelId,
    xs: &[f64],
    params: &SessionParams,
    ckpt: Option<&(String, usize)>,
    crash_after: Option<usize>,
) -> Result<bool, String> {
    let mut rest = xs;
    while !rest.is_empty() {
        let mut take = rest.len();
        // The session tracks its own cadence (`checkpoint_every` is set
        // from --checkpoint-every at build/restore time): cut the chunk
        // so checkpoint positions are independent of the chunking.
        if let Some(until) = session.until_checkpoint() {
            take = take.min(until.max(1));
        }
        if let Some(n) = crash_after {
            take = take.min(n.saturating_sub(session.len()).max(1));
        }
        let (chunk, tail) = rest.split_at(take);
        rest = tail;
        let snaps = session
            .push_batch(channel.clone(), chunk)
            .map_err(|e| e.to_string())?;
        for snap in snaps {
            if !emit_estimate(Some(&snap.channel), params.target_p, &snap.estimate)? {
                return Ok(false);
            }
        }
        if let Some((path, _)) = ckpt {
            if session.checkpoint_due() {
                write_checkpoint(path, params, session)?;
            }
        }
        if crash_after.is_some_and(|n| session.len() >= n) {
            // Deterministic crash injection for the restart-determinism
            // CI job: die hard, no unwinding, no cleanup — exactly like
            // a kill -9 mid-campaign. The last atomic checkpoint (if
            // any) is what a resume sees.
            eprintln!(
                "crashing after {} measurements (--crash-after)",
                session.len()
            );
            std::process::abort();
        }
    }
    Ok(true)
}

/// Ingest a tagged feed, print scheduled snapshots, write checkpoints at
/// the configured cadence, merge, and print the per-channel verdicts
/// plus the program-level envelope.
///
/// Consecutive same-channel measurements are buffered and bulk-ingested
/// through [`AnalysisSession::push_batch`] (interleaved feeds degrade
/// gracefully to per-item pushes, which keeps the ingest order — and so
/// the report — exactly as fed). `--stop-on-converged` keeps the
/// per-item path: it must stop at exactly the converging measurement.
fn drive_session<F: EngineFactory>(
    mut session: AnalysisSession<F>,
    feed: impl Iterator<Item = Result<Tagged, String>>,
    params: &SessionParams,
    ckpt: Option<&(String, usize)>,
    crash_after: Option<usize>,
    cache_stats: bool,
) -> Result<(), String> {
    let target_p = params.target_p;
    let stop_on_converged = params.stop_on_converged;
    if stop_on_converged {
        for tagged in feed {
            let snap = session.push(tagged?).map_err(|e| e.to_string())?;
            if let Some(snap) = snap {
                if !emit_estimate(Some(&snap.channel), target_p, &snap.estimate)? {
                    return Ok(());
                }
                if snap.estimate.converged && session.all_converged() {
                    // NOTE: "every channel" means every channel *seen so
                    // far* — a sequentially ordered file (all of channel A,
                    // then B) would stop after A. Make the early stop loud
                    // so an incomplete envelope is diagnosable.
                    eprintln!(
                        "stopping early: all {} channel(s) seen so far converged \
                         (total={} measurements; channels appearing later in the \
                         feed are not analysed)",
                        session.channel_count(),
                        session.len(),
                    );
                    break;
                }
            }
            if let Some((path, _)) = ckpt {
                if session.checkpoint_due() {
                    write_checkpoint(path, params, &mut session)?;
                }
            }
            if crash_after.is_some_and(|n| session.len() >= n) {
                eprintln!(
                    "crashing after {} measurements (--crash-after)",
                    session.len()
                );
                std::process::abort();
            }
        }
    } else {
        let mut run_channel: Option<ChannelId> = None;
        let mut run: Vec<f64> = Vec::with_capacity(FEED_CHUNK);
        for tagged in feed {
            match tagged {
                Ok(Tagged { channel, time }) => {
                    let switching = run_channel.as_ref().is_some_and(|c| *c != channel);
                    if switching || run.len() >= FEED_CHUNK {
                        if let Some(ch) = run_channel.take() {
                            if !feed_run(&mut session, &ch, &run, params, ckpt, crash_after)? {
                                return Ok(());
                            }
                            run.clear();
                        }
                    }
                    run_channel = Some(channel);
                    run.push(time);
                }
                Err(e) => {
                    // Flush what came before the bad line first: those
                    // measurements are already analysed in the per-item
                    // loop too, snapshots and checkpoints included.
                    if let Some(ch) = run_channel.take() {
                        if !feed_run(&mut session, &ch, &run, params, ckpt, crash_after)? {
                            return Ok(());
                        }
                    }
                    return Err(e);
                }
            }
        }
        if let Some(ch) = run_channel.take() {
            if !feed_run(&mut session, &ch, &run, params, ckpt, crash_after)? {
                return Ok(());
            }
        }
    }
    if session.is_empty() {
        return Err("session feed contained no measurements".into());
    }
    let total = session.len();
    let merged = session.merge();

    // Satellite of PR 7: the summary answers every budget question
    // through the same fingerprint-keyed cache discipline the `serve`
    // subsystem uses ([`proxima::serve::cache`]). Keys fold in the
    // session configuration (the encoded `SessionParams`), the channel,
    // its analysed count and the probability — so the envelope pass
    // below re-reads the per-channel budgets as O(1) hits instead of
    // re-walking each fitted tail. Output is byte-identical to the
    // uncached path; `--cache-stats` reports the accounting on stderr.
    let fingerprint = {
        let mut w = persist::Writer::new();
        params.encode(&mut w);
        persist::fnv1a(&w.into_bytes())
    };
    let mut cache = VerdictCache::new(64);
    let budget_at = |cache: &mut VerdictCache, channel: &ChannelId, v: &Verdict| -> Option<f64> {
        let key = query_key(
            fingerprint,
            3,
            channel.as_str(),
            v.provenance.n as u64,
            target_p.to_bits(),
        );
        if let Some(bytes) = cache.get(key) {
            if let Ok(raw) = <[u8; 8]>::try_from(bytes.as_slice()) {
                return Some(f64::from_le_bytes(raw));
            }
        }
        let budget = v.budget_for(target_p).ok()?;
        cache.insert(key, budget.to_le_bytes().to_vec());
        Some(budget)
    };

    use std::io::Write;
    let mut out = std::io::stdout().lock();
    // The summary closure mutably borrows `cache`; scoping it releases
    // the borrow before the stderr counter dump below.
    let summary_result = {
        let mut print_summary = || -> std::io::Result<()> {
            writeln!(
                out,
                "session total={total} channels={}",
                merged.channels().len()
            )?;
            for cv in merged.channels() {
                match &cv.outcome {
                    Ok(v) => writeln!(
                        out,
                        "channel {} n={} engine={} pwcet@{target_p:e}={:.0} hwm={:.0} iid={}{}",
                        cv.channel,
                        v.provenance.n,
                        v.provenance.engine,
                        budget_at(&mut cache, &cv.channel, v).unwrap_or(f64::NAN),
                        v.high_watermark(),
                        v.iid.label(),
                        match v.provenance.converged {
                            Some(true) => " CONVERGED",
                            Some(false) => " settling",
                            None => "",
                        },
                    )?,
                    Err(e) => writeln!(
                        out,
                        "channel {} FAILED: {e}{}",
                        cv.channel,
                        if cv.dropped > 0 {
                            format!(" ({} measurements dropped)", cv.dropped)
                        } else {
                            String::new()
                        },
                    )?,
                }
            }
            // The envelope is the worst cached budget — every lookup below
            // was primed by the per-channel lines above, so this pass is all
            // cache hits. Semantics mirror `SessionVerdict::envelope_budget`
            // exactly (first strict maximum wins; any budget error defers to
            // the library call so the message construction is identical).
            let envelope = {
                let mut best: Option<(&ChannelId, f64)> = None;
                let mut complete = true;
                for (id, v) in merged.ok_channels() {
                    match budget_at(&mut cache, id, v) {
                        Some(budget) => {
                            if best.is_none_or(|(_, cur)| budget > cur) {
                                best = Some((id, budget));
                            }
                        }
                        None => {
                            complete = false;
                            break;
                        }
                    }
                }
                match best {
                    Some(found) if complete => Ok(found),
                    _ => merged.envelope_budget(target_p),
                }
            };
            match envelope {
                Ok((worst, budget)) => writeln!(
                    out,
                    "envelope pwcet@{target_p:e}={budget:.0} (worst channel: {worst}) hwm={:.0}",
                    merged.high_watermark(),
                ),
                Err(e) => writeln!(out, "envelope UNAVAILABLE: {e}"),
            }
        };
        print_summary()
    };
    match summary_result {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => return Ok(()),
        Err(e) => return Err(e.to_string()),
    }
    if cache_stats {
        // Stderr only: the determinism batteries diff stdout.
        eprintln!(
            "cache stats: hits={} misses={} insertions={} evictions={} len={} capacity={}",
            cache.hits(),
            cache.misses(),
            cache.insertions(),
            cache.evictions(),
            cache.len(),
            cache.capacity(),
        );
    }
    if !merged.all_ok() {
        return Err(format!(
            "{} of {} channels failed",
            merged.failures().count(),
            merged.channels().len()
        ));
    }
    Ok(())
}

/// `mbpta serve`: bind (or resume) the framed-TCP analysis service and
/// run its accept loop until a SHUTDOWN frame arrives.
fn serve_cmd(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr")?.unwrap_or("127.0.0.1:0");
    let jobs: usize = parse_flag(args, "--jobs", 0)?;
    let max_conns: usize = parse_flag(args, "--max-conns", 0)?;
    let crash_after: Option<usize> = flag_value(args, "--crash-after")?
        .map(|raw| {
            raw.parse()
                .map_err(|_| format!("invalid value for --crash-after: `{raw}`"))
        })
        .transpose()?;

    let server = if let Some(resume_path) = flag_value(args, "--resume")? {
        // The checkpoint records the serve configuration; re-specifying
        // analysis or cache flags would silently conflict with it.
        // `--workers` is deliberately allowed: the manifest records the
        // old worker count, and resume re-partitions to the new one.
        for flag in [
            "--target-p",
            "--block",
            "--every",
            "--sketch",
            "--cache-capacity",
            "--cache-ttl",
            "--checkpoint",
            "--checkpoint-every",
        ] {
            if args.iter().any(|a| a == flag) {
                return Err(format!(
                    "{flag} conflicts with --resume (the checkpoint already records \
                     the serve configuration)"
                ));
            }
        }
        let opts = proxima::serve::ResumeOptions {
            jobs,
            crash_after,
            workers: parse_flag(args, "--workers", 0)?,
            max_conns,
        };
        eprintln!("resuming from {resume_path}");
        Server::resume(addr, resume_path, opts).map_err(|e| e.to_string())?
    } else {
        let target_p: f64 = parse_flag(args, "--target-p", 1e-12)?;
        let block: usize = parse_flag(args, "--block", 50)?;
        let every: usize = parse_flag(args, "--every", 250)?;
        let cache_capacity: usize = parse_flag(args, "--cache-capacity", 256)?;
        let cache_ttl: u64 = parse_flag(args, "--cache-ttl", 0)?;
        let workers: usize = parse_flag(args, "--workers", 1)?;
        let (checkpoint_path, checkpoint_every) = match checkpoint_spec(args)? {
            Some((path, every)) => (Some(std::path::PathBuf::from(path)), every),
            None => (None, 0),
        };
        let config = ServeConfig {
            stream: StreamConfig {
                block_size: block,
                target_p,
                sketch: parse_sketch(args)?,
                ..StreamConfig::default()
            },
            snapshot_every: every,
            checkpoint_path,
            checkpoint_every,
            cache_capacity,
            cache_ttl,
            workers,
            max_conns,
            jobs,
            crash_after,
        };
        Server::bind(addr, config).map_err(|e| e.to_string())?
    };
    {
        // Parseable readiness line on stdout (the CI smoke job and the
        // subprocess tests read the OS-assigned port back from it).
        use std::io::Write;
        let mut out = std::io::stdout().lock();
        writeln!(out, "listening on {}", server.local_addr()).map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
    }
    server.run().map_err(|e| e.to_string())
}

/// One printed line per server-emitted estimate (`call ingest` /
/// `call snapshot`). The client does not know the server's target
/// cutoff, so the line carries the estimate's own pWCET rather than a
/// `pwcet@p` label.
fn print_wire_snapshot(snap: &WireSnapshot) {
    let est = &snap.estimate;
    println!(
        "snapshot channel={} n={} blocks={} pwcet={:.0} hwm={:.0} iid={} {}",
        snap.channel,
        est.n,
        est.blocks.unwrap_or(0),
        est.pwcet,
        est.high_watermark,
        est.iid.map_or("-", |evidence| evidence.label()),
        if est.converged {
            "CONVERGED"
        } else {
            "settling"
        },
    );
}

/// `mbpta call`: one request/response exchange with a running server
/// (`ingest` streams many frames over the one connection).
fn call_cmd(args: &[String]) -> Result<(), String> {
    let pos = positionals(args);
    let (addr, verb, rest) = match pos.as_slice() {
        [addr, verb, rest @ ..] => (*addr, *verb, rest),
        _ => {
            return Err("call needs <addr> and a verb \
                 (ingest|snapshot|verdict|merge|checkpoint|stats|shutdown)"
                .into())
        }
    };
    let mut client =
        ServeClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    match verb {
        "ingest" => {
            let (channel, file) = match rest {
                [channel] => (*channel, None),
                [channel, file] => (*channel, Some(*file)),
                _ => return Err("call ingest needs <channel> [<file>]".into()),
            };
            let skip: usize = parse_flag(args, "--skip", 0)?;
            let chunk: usize = parse_flag(args, "--chunk", 512)?;
            if chunk == 0 {
                return Err("--chunk must be positive".into());
            }
            let source: Box<dyn Iterator<Item = Result<f64, String>>> = match file {
                Some(file) => {
                    let f = std::fs::File::open(file)
                        .map_err(|e| format!("cannot open {file}: {e}"))?;
                    Box::new(
                        LineSource::new(std::io::BufReader::new(f))
                            .map(|r| r.map_err(|e| e.to_string())),
                    )
                }
                None => Box::new(
                    LineSource::new(std::io::BufReader::new(std::io::stdin()))
                        .map(|r| r.map_err(|e| e.to_string())),
                ),
            };
            // The --skip prefix is what a restarted server already
            // holds (`call stats` → total): resending from there makes
            // the resumed feed order identical to an uninterrupted one.
            let mut sent = 0u64;
            let mut last: Option<(u64, u64)> = None;
            let mut values: Vec<f64> = Vec::with_capacity(chunk);
            let mut send = |values: &mut Vec<f64>, sent: &mut u64| -> Result<(u64, u64), String> {
                let (channel_len, total, snapshots) =
                    client.ingest(channel, values).map_err(|e| e.to_string())?;
                *sent += values.len() as u64;
                values.clear();
                for snap in &snapshots {
                    print_wire_snapshot(snap);
                }
                Ok((channel_len, total))
            };
            for x in source.skip(skip) {
                values.push(x?);
                if values.len() == chunk {
                    last = Some(send(&mut values, &mut sent)?);
                }
            }
            if !values.is_empty() {
                last = Some(send(&mut values, &mut sent)?);
            }
            match last {
                Some((channel_len, total)) => println!(
                    "ingested {sent} measurements into channel {channel} \
                     (channel n={channel_len}, session total={total})"
                ),
                None => println!("ingested 0 measurements into channel {channel}"),
            }
            Ok(())
        }
        "snapshot" => {
            let [channel] = rest else {
                return Err("call snapshot needs <channel>".into());
            };
            match client.snapshot(channel).map_err(|e| e.to_string())? {
                Some(snap) => print_wire_snapshot(&snap),
                None => println!("no snapshot yet for channel {channel}"),
            }
            Ok(())
        }
        "verdict" => {
            if !rest.is_empty() {
                return Err("call verdict takes flags only (--p, --channel)".into());
            }
            let p: f64 = parse_flag(args, "--p", 1e-12)?;
            let channel = flag_value(args, "--channel")?;
            let response = client.verdict(p, channel).map_err(|e| e.to_string())?;
            let Response::Verdicts {
                p,
                channels,
                envelope,
            } = response
            else {
                return Err("unexpected response shape".into());
            };
            for (name, outcome) in &channels {
                match outcome {
                    Ok(v) => {
                        // The raw budget bits ride along so the CI
                        // drills can diff for *bit* identity, not just
                        // identical rounding.
                        let budget = v.budget_for(p).unwrap_or(f64::NAN);
                        println!(
                            "channel {name} n={} pwcet@{p:e}={budget:.0} \
                             bits=0x{:016x} hwm={:.0} iid={}",
                            v.provenance.n,
                            budget.to_bits(),
                            v.high_watermark(),
                            v.iid.label(),
                        );
                    }
                    Err(e) => println!("channel {name} FAILED: {e}"),
                }
            }
            match envelope {
                Ok((worst, budget)) => println!(
                    "envelope pwcet@{p:e}={budget:.0} bits=0x{:016x} (worst channel: {worst})",
                    budget.to_bits(),
                ),
                Err(e) => println!("envelope UNAVAILABLE: {e}"),
            }
            Ok(())
        }
        "merge" => {
            let [channel, blob_file] = rest else {
                return Err("call merge needs <channel> <blob-file>".into());
            };
            let blob =
                std::fs::read(blob_file).map_err(|e| format!("cannot open {blob_file}: {e}"))?;
            let (channel_len, total) = client.merge(channel, &blob).map_err(|e| e.to_string())?;
            println!(
                "merged {blob_file} into channel {channel} \
                 (channel n={channel_len}, session total={total})"
            );
            Ok(())
        }
        "checkpoint" => {
            let bytes = client.checkpoint().map_err(|e| e.to_string())?;
            println!("checkpoint written ({bytes} bytes)");
            Ok(())
        }
        "stats" => {
            let s = client.stats().map_err(|e| e.to_string())?;
            // One `name=value` per line: the CI smoke job greps these
            // (`grep '^total=' | cut -d= -f2`).
            println!("total={}", s.total);
            println!("channels={}", s.channels);
            println!("connections={}", s.connections);
            println!("frames_ingest={}", s.frames_ingest);
            println!("frames_snapshot={}", s.frames_snapshot);
            println!("frames_verdict={}", s.frames_verdict);
            println!("frames_merge={}", s.frames_merge);
            println!("frames_admin={}", s.frames_admin);
            println!("protocol_errors={}", s.protocol_errors);
            println!("cache_hits={}", s.cache_hits);
            println!("cache_misses={}", s.cache_misses);
            println!("cache_insertions={}", s.cache_insertions);
            println!("cache_evictions={}", s.cache_evictions);
            println!("cache_expirations={}", s.cache_expirations);
            println!("cache_len={}", s.cache_len);
            println!("cache_capacity={}", s.cache_capacity);
            println!("checkpoints_written={}", s.checkpoints_written);
            println!("last_checkpoint_bytes={}", s.last_checkpoint_bytes);
            println!("since_checkpoint={}", s.since_checkpoint);
            println!("busy_rejections={}", s.busy_rejections);
            println!("workers={}", s.workers);
            for (i, shard) in s.shards.iter().enumerate() {
                println!(
                    "shard{i}: channels={} total={} cache_hits={} cache_misses={} \
                     cache_len={}",
                    shard.channels,
                    shard.total,
                    shard.cache_hits,
                    shard.cache_misses,
                    shard.cache_len
                );
            }
            Ok(())
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server shutting down");
            Ok(())
        }
        other => Err(format!("unknown call verb `{other}`")),
    }
}

/// `mbpta shard`: fold a measurement campaign into a sealed federated
/// state blob for `call merge` — the shard ships folded analyzer state,
/// never raw measurements.
fn shard_cmd(args: &[String]) -> Result<(), String> {
    let out = flag_value(args, "--out")?.ok_or("shard needs --out <blob>")?;
    let shards: usize = parse_flag(args, "--shards", 1)?;
    let target_p: f64 = parse_flag(args, "--target-p", 1e-12)?;
    let block: usize = parse_flag(args, "--block", 50)?;
    let simulate = args.iter().any(|a| a == "--simulate");
    if !simulate {
        for flag in ["--runs", "--seed", "--path"] {
            if args.iter().any(|a| a == flag) {
                return Err(format!("{flag} requires --simulate"));
            }
        }
    }
    let stream = StreamConfig {
        block_size: block,
        target_p,
        sketch: parse_sketch(args)?,
        ..StreamConfig::default()
    };
    let mut config = FederatedConfig::new(stream, shards);
    let fed = if simulate {
        let sim = SimSource::from_args(args, 3000)?;
        // A known campaign volume balances the shards; the folded state
        // is bit-identical at every shard count regardless.
        config = config.balanced_for(sim.runs);
        let mut fed = FederatedAnalyzer::new(config).map_err(|e| e.to_string())?;
        eprintln!(
            "sharding {} simulated runs of TVCA path `{}` over {shards} shard(s) (seed {})",
            sim.runs, sim.mode, sim.seed
        );
        fed.ingest_trace(
            PlatformConfig::mbpta_compliant(),
            &sim.trace,
            sim.runs,
            sim.seed,
        )
        .map_err(|e| e.to_string())?;
        fed
    } else {
        let mut fed = FederatedAnalyzer::new(config).map_err(|e| e.to_string())?;
        let source: Box<dyn Iterator<Item = Result<f64, String>>> = match positional(args) {
            Some(file) => {
                let f =
                    std::fs::File::open(file).map_err(|e| format!("cannot open {file}: {e}"))?;
                Box::new(
                    LineSource::new(std::io::BufReader::new(f))
                        .map(|r| r.map_err(|e| e.to_string())),
                )
            }
            None => Box::new(
                LineSource::new(std::io::BufReader::new(std::io::stdin()))
                    .map(|r| r.map_err(|e| e.to_string())),
            ),
        };
        let mut chunk: Vec<f64> = Vec::with_capacity(FEED_CHUNK);
        for x in source {
            chunk.push(x?);
            if chunk.len() == FEED_CHUNK {
                fed.push_batch(&chunk).map_err(|e| e.to_string())?;
                chunk.clear();
            }
        }
        if !chunk.is_empty() {
            fed.push_batch(&chunk).map_err(|e| e.to_string())?;
        }
        fed
    };
    if fed.is_empty() {
        return Err("shard feed contained no measurements".into());
    }
    let blob = save_federated(&fed);
    std::fs::write(out, &blob).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote sealed federated blob: {} measurements over {shards} shard(s), {} bytes -> {out}",
        fed.len(),
        blob.len(),
    );
    Ok(())
}
