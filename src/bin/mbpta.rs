//! `mbpta` — command-line probabilistic timing analysis.
//!
//! Reads execution-time measurements (one per line, `#` comments allowed)
//! and runs the MBPTA pipeline on them — the open equivalent of feeding a
//! commercial timing-analysis tool a measurement file.
//!
//! ```text
//! USAGE:
//!   mbpta analyze <file> [--cutoff 1e-12] [--alpha 0.05] [--block N] [--cv] [--csv]
//!   mbpta measure [--runs 3000] [--seed 10000000] [--jobs N] [--path nominal|saturated-x|saturated-y|fault-recovery]
//!   mbpta stream [<file>] [--target-p 1e-12] [--block 50] [--every 5] [--simulate] [...]
//!   mbpta --help
//! ```
//!
//! `analyze` consumes a measurement file; `measure` generates one from the
//! built-in simulated TVCA campaign (useful for demos and pipelines);
//! `stream` analyses measurements incrementally as they arrive — from a
//! file, from stdin (so a measurement rig can pipe straight in), or from
//! the built-in simulator — printing a pWCET snapshot at every refit.

use std::process::ExitCode;

use proxima::mbpta::cv::analyze_cv;
use proxima::prelude::*;
use proxima::stream::replay::{LineSource, TraceReplay};
use proxima::stream::{PwcetSnapshot, StreamAnalyzer, StreamConfig};
use proxima::workload::tvca::{ControlMode, Tvca, TvcaConfig};

const USAGE: &str = "\
mbpta - measurement-based probabilistic timing analysis

USAGE:
  mbpta analyze <file> [--cutoff <p>] [--alpha <a>] [--block <n>] [--cv] [--csv]
  mbpta measure [--runs <n>] [--seed <s>] [--jobs <j>] [--path <name>]
  mbpta stream [<file>] [--target-p <p>] [--block <n>] [--every <k>]
               [--simulate] [--runs <n>] [--seed <s>] [--path <name>]
               [--stop-on-converged]
  mbpta --help

COMMANDS:
  analyze   run the MBPTA pipeline on a measurement file
            (one execution time per line; '#' starts a comment)
  measure   print a synthetic TVCA campaign in that format (simulated
            MBPTA-compliant platform; paths: nominal, saturated-x,
            saturated-y, fault-recovery)
  stream    incremental MBPTA over a measurement stream: ingest from
            <file>, stdin (no file argument), or the simulator
            (--simulate); print a pWCET snapshot at every refit

OPTIONS (analyze):
  --cutoff <p>   exceedance probability for the headline budget [1e-12]
  --alpha <a>    significance level of the i.i.d. gate          [0.05]
  --block <n>    fixed block size (default: automatic selection)
  --cv           use MBPTA-CV (exponential tail) instead of block maxima
  --csv          also print the pWCET curve as CSV

OPTIONS (measure):
  --runs <n>     number of measured executions                  [3000]
  --seed <s>     base seed of the campaign                      [10000000]
  --jobs <j>     measure on <j> threads (0 = all cores); the
                 sharded campaign is bit-identical for every
                 <j>, but uses the SplitMix64 seed stream
                 instead of the sequential per-run seeds
  --path <name>  TVCA execution path                            [nominal]

OPTIONS (stream):
  --target-p <p>       exceedance cutoff tracked by snapshots   [1e-12]
  --block <n>          block size for block maxima              [50]
  --every <k>          refit every <k> completed blocks         [5]
  --simulate           measure the TVCA live instead of reading
  --runs <n>           simulated runs (with --simulate)         [3000]
  --seed <s>           simulation master seed                   [10000000]
  --path <name>        TVCA execution path (with --simulate)    [nominal]
  --stop-on-converged  stop ingesting once the estimate is stable
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `mbpta --help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("measure") => measure_cmd(&args[1..]),
        Some("stream") => stream_cmd(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

/// Parse `--flag value` pairs after the positional arguments.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value for {flag}: `{raw}`")),
    }
}

fn analyze_cmd(args: &[String]) -> Result<(), String> {
    let file = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or("analyze needs a measurement file")?;
    let cutoff: f64 = parse_flag(args, "--cutoff", 1e-12)?;
    let alpha: f64 = parse_flag(args, "--alpha", 0.05)?;
    let use_cv = args.iter().any(|a| a == "--cv");
    let want_csv = args.iter().any(|a| a == "--csv");

    let reader = std::fs::File::open(file).map_err(|e| format!("cannot open {file}: {e}"))?;
    let campaign = Campaign::from_reader(reader).map_err(|e| e.to_string())?;

    let mut config = MbptaConfig {
        alpha,
        ..MbptaConfig::default()
    };
    if let Some(block) = flag_value(args, "--block")? {
        let n: usize = block
            .parse()
            .map_err(|_| format!("invalid block size `{block}`"))?;
        config.block = BlockSpec::Fixed(n);
    }

    if use_cv {
        let report = analyze_cv(campaign.times(), &config).map_err(|e| e.to_string())?;
        println!(
            "MBPTA-CV: threshold {:.0}, {} exceedances, residual CV {:.3}",
            report.fit.threshold, report.fit.tail_size, report.fit.cv
        );
        println!(
            "i.i.d. gate: Ljung-Box p={:.3}, KS p={:.3}",
            report.iid.ljung_box.p_value, report.iid.ks.p_value
        );
        let budget = report.budget_for(cutoff).map_err(|e| e.to_string())?;
        println!("pWCET @ {cutoff:e}: {budget:.0}");
    } else {
        let report = analyze(campaign.times(), &config).map_err(|e| e.to_string())?;
        print!("{}", render_report(&report));
        let budget = report.budget_for(cutoff).map_err(|e| e.to_string())?;
        println!("headline budget @ {cutoff:e}: {budget:.0}");
        if want_csv {
            let probs: Vec<f64> = (3..=15).map(|e| 10f64.powi(-e)).collect();
            let csv =
                proxima::mbpta::render_pwcet_csv(&report, &probs).map_err(|e| e.to_string())?;
            print!("{csv}");
        }
    }
    Ok(())
}

/// Flags that take no value: an argument following one of these is a
/// positional argument, not the flag's value.
const BOOLEAN_FLAGS: &[&str] = &["--cv", "--csv", "--simulate", "--stop-on-converged"];

/// `true` if `candidate` is the value of some value-taking `--flag` (so it
/// is not the positional file argument).
fn is_flag_value(args: &[String], candidate: &str) -> bool {
    args.windows(2).any(|w| {
        w[0].starts_with("--") && !BOOLEAN_FLAGS.contains(&w[0].as_str()) && w[1] == candidate
    })
}

fn measure_cmd(args: &[String]) -> Result<(), String> {
    let runs: usize = parse_flag(args, "--runs", 3000)?;
    let seed: u64 = parse_flag(args, "--seed", 10_000_000u64)?;
    let mode = parse_tvca_mode(flag_value(args, "--path")?.unwrap_or("nominal"))?;
    let jobs = flag_value(args, "--jobs")?
        .map(|raw| {
            raw.parse::<usize>()
                .map_err(|_| format!("invalid value for --jobs: `{raw}`"))
        })
        .transpose()?;
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(mode);
    // Measure first, print after: a failed campaign must not leave a
    // partial (headers-only) measurement file on stdout.
    let (campaign, seed_line) = if let Some(jobs) = jobs {
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant()).with_jobs(jobs);
        let campaign = runner.run(&trace, runs, seed).map_err(|e| e.to_string())?;
        let line = format!("# runs={runs} master_seed={seed} jobs={}", runner.jobs());
        (campaign, line)
    } else {
        let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
        let campaign =
            Campaign::measure(&mut platform, &trace, runs, seed).map_err(|e| e.to_string())?;
        (campaign, format!("# runs={runs} base_seed={seed}"))
    };
    println!("# TVCA path `{mode}` on the simulated MBPTA-compliant platform");
    println!("{seed_line}");
    campaign.write_to(std::io::stdout().lock()).or_else(|e| {
        // A downstream consumer closing early (`measure | stream
        // --stop-on-converged`, `measure | head`) is a normal way for
        // this pipeline to end, not a measurement failure.
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            Ok(())
        } else {
            Err(e.to_string())
        }
    })
}

fn parse_tvca_mode(path: &str) -> Result<ControlMode, String> {
    match path {
        "nominal" => Ok(ControlMode::Nominal),
        "saturated-x" => Ok(ControlMode::SaturatedX),
        "saturated-y" => Ok(ControlMode::SaturatedY),
        "fault-recovery" => Ok(ControlMode::FaultRecovery),
        other => Err(format!("unknown path `{other}`")),
    }
}

/// One printed line per snapshot, compact enough to tail live. Unlike
/// `println!`, a closed stdout surfaces as an error the caller can treat
/// as end-of-interest, not a panic.
fn print_snapshot(target_p: f64, snap: &PwcetSnapshot) -> std::io::Result<()> {
    use std::io::Write;
    let delta = snap
        .convergence_delta
        .map_or("-".to_string(), |d| format!("{:.3}%", d * 100.0));
    let ci = snap.ci.map_or("-".to_string(), |ci| {
        format!("[{:.0}, {:.0}]", ci.lower, ci.upper)
    });
    writeln!(
        std::io::stdout().lock(),
        "snapshot n={} blocks={} pwcet@{target_p:e}={:.0} ci={ci} delta={delta} hwm={:.0} iid={} {}",
        snap.n,
        snap.blocks,
        snap.pwcet,
        snap.high_watermark,
        snap.iid_status.status,
        if snap.converged { "CONVERGED" } else { "settling" },
    )
}

fn stream_cmd(args: &[String]) -> Result<(), String> {
    let target_p: f64 = parse_flag(args, "--target-p", 1e-12)?;
    let block: usize = parse_flag(args, "--block", 50)?;
    let every: usize = parse_flag(args, "--every", 5)?;
    let simulate = args.iter().any(|a| a == "--simulate");
    let stop_on_converged = args.iter().any(|a| a == "--stop-on-converged");
    if !simulate {
        // Silently dropping these would leave the user blocked on stdin
        // wondering why their flags did nothing.
        for flag in ["--runs", "--seed", "--path"] {
            if args.iter().any(|a| a == flag) {
                return Err(format!("{flag} requires --simulate"));
            }
        }
    }

    let config = StreamConfig {
        block_size: block,
        refit_every_blocks: every,
        target_p,
        ..StreamConfig::default()
    };
    let mut analyzer = StreamAnalyzer::new(config).map_err(|e| e.to_string())?;

    let source: Box<dyn Iterator<Item = Result<f64, String>>> = if simulate {
        let runs: usize = parse_flag(args, "--runs", 3000)?;
        let seed: u64 = parse_flag(args, "--seed", 10_000_000u64)?;
        let mode = parse_tvca_mode(flag_value(args, "--path")?.unwrap_or("nominal"))?;
        eprintln!("streaming {runs} simulated runs of TVCA path `{mode}` (seed {seed})");
        Box::new(TraceReplay::tvca(mode, TvcaConfig::default(), runs, seed).map(Ok))
    } else {
        let file = args
            .iter()
            .find(|a| !a.starts_with("--") && !is_flag_value(args, a));
        match file {
            Some(file) => {
                let f =
                    std::fs::File::open(file).map_err(|e| format!("cannot open {file}: {e}"))?;
                Box::new(
                    LineSource::new(std::io::BufReader::new(f))
                        .map(|r| r.map_err(|e| e.to_string())),
                )
            }
            None => Box::new(
                LineSource::new(std::io::BufReader::new(std::io::stdin()))
                    .map(|r| r.map_err(|e| e.to_string())),
            ),
        }
    };

    for x in source {
        let snap = analyzer.push(x?).map_err(|e| e.to_string())?;
        if let Some(snap) = snap {
            match print_snapshot(target_p, &snap) {
                Ok(()) => {}
                // Downstream closed (`mbpta stream ... | head`): a normal
                // way for a live tail to end, mirroring `measure`.
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => return Ok(()),
                Err(e) => return Err(e.to_string()),
            }
            if stop_on_converged && snap.converged {
                break;
            }
        }
    }
    let final_snap = analyzer.finish().map_err(|e| e.to_string())?;
    {
        use std::io::Write;
        let result = writeln!(
            std::io::stdout().lock(),
            "final n={} blocks={} pwcet@{target_p:e}={:.0} hwm={:.0} snapshots={} converged={}",
            final_snap.n,
            final_snap.blocks,
            final_snap.pwcet,
            final_snap.high_watermark,
            analyzer.snapshots_emitted(),
            analyzer
                .converged_at()
                .map_or("no".to_string(), |at| format!("at n={at}")),
        );
        match result {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(())
}
