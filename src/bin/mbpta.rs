//! `mbpta` — command-line probabilistic timing analysis.
//!
//! Reads execution-time measurements (one per line, `#` comments allowed)
//! and runs the MBPTA pipeline on them — the open equivalent of feeding a
//! commercial timing-analysis tool a measurement file.
//!
//! ```text
//! USAGE:
//!   mbpta analyze <file> [--cutoff 1e-12] [--alpha 0.05] [--block N] [--cv] [--csv]
//!   mbpta measure [--runs 3000] [--seed 10000000] [--jobs N] [--path nominal|saturated-x|saturated-y|fault-recovery]
//!   mbpta --help
//! ```
//!
//! `analyze` consumes a measurement file; `measure` generates one from the
//! built-in simulated TVCA campaign (useful for demos and pipelines).

use std::process::ExitCode;

use proxima::mbpta::cv::analyze_cv;
use proxima::prelude::*;
use proxima::workload::tvca::{ControlMode, Tvca, TvcaConfig};

const USAGE: &str = "\
mbpta - measurement-based probabilistic timing analysis

USAGE:
  mbpta analyze <file> [--cutoff <p>] [--alpha <a>] [--block <n>] [--cv] [--csv]
  mbpta measure [--runs <n>] [--seed <s>] [--jobs <j>] [--path <name>]
  mbpta --help

COMMANDS:
  analyze   run the MBPTA pipeline on a measurement file
            (one execution time per line; '#' starts a comment)
  measure   print a synthetic TVCA campaign in that format (simulated
            MBPTA-compliant platform; paths: nominal, saturated-x,
            saturated-y, fault-recovery)

OPTIONS (analyze):
  --cutoff <p>   exceedance probability for the headline budget [1e-12]
  --alpha <a>    significance level of the i.i.d. gate          [0.05]
  --block <n>    fixed block size (default: automatic selection)
  --cv           use MBPTA-CV (exponential tail) instead of block maxima
  --csv          also print the pWCET curve as CSV

OPTIONS (measure):
  --runs <n>     number of measured executions                  [3000]
  --seed <s>     base seed of the campaign                      [10000000]
  --jobs <j>     measure on <j> threads (0 = all cores); the
                 sharded campaign is bit-identical for every
                 <j>, but uses the SplitMix64 seed stream
                 instead of the sequential per-run seeds
  --path <name>  TVCA execution path                            [nominal]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `mbpta --help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("measure") => measure_cmd(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

/// Parse `--flag value` pairs after the positional arguments.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value for {flag}: `{raw}`")),
    }
}

fn analyze_cmd(args: &[String]) -> Result<(), String> {
    let file = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or("analyze needs a measurement file")?;
    let cutoff: f64 = parse_flag(args, "--cutoff", 1e-12)?;
    let alpha: f64 = parse_flag(args, "--alpha", 0.05)?;
    let use_cv = args.iter().any(|a| a == "--cv");
    let want_csv = args.iter().any(|a| a == "--csv");

    let reader = std::fs::File::open(file).map_err(|e| format!("cannot open {file}: {e}"))?;
    let campaign = Campaign::from_reader(reader).map_err(|e| e.to_string())?;

    let mut config = MbptaConfig {
        alpha,
        ..MbptaConfig::default()
    };
    if let Some(block) = flag_value(args, "--block")? {
        let n: usize = block
            .parse()
            .map_err(|_| format!("invalid block size `{block}`"))?;
        config.block = BlockSpec::Fixed(n);
    }

    if use_cv {
        let report = analyze_cv(campaign.times(), &config).map_err(|e| e.to_string())?;
        println!(
            "MBPTA-CV: threshold {:.0}, {} exceedances, residual CV {:.3}",
            report.fit.threshold, report.fit.tail_size, report.fit.cv
        );
        println!(
            "i.i.d. gate: Ljung-Box p={:.3}, KS p={:.3}",
            report.iid.ljung_box.p_value, report.iid.ks.p_value
        );
        let budget = report.budget_for(cutoff).map_err(|e| e.to_string())?;
        println!("pWCET @ {cutoff:e}: {budget:.0}");
    } else {
        let report = analyze(campaign.times(), &config).map_err(|e| e.to_string())?;
        print!("{}", render_report(&report));
        let budget = report.budget_for(cutoff).map_err(|e| e.to_string())?;
        println!("headline budget @ {cutoff:e}: {budget:.0}");
        if want_csv {
            let probs: Vec<f64> = (3..=15).map(|e| 10f64.powi(-e)).collect();
            let csv =
                proxima::mbpta::render_pwcet_csv(&report, &probs).map_err(|e| e.to_string())?;
            print!("{csv}");
        }
    }
    Ok(())
}

/// `true` if `candidate` is the value of some `--flag` (so it is not the
/// positional file argument).
fn is_flag_value(args: &[String], candidate: &str) -> bool {
    args.windows(2)
        .any(|w| w[0].starts_with("--") && w[1] == candidate)
}

fn measure_cmd(args: &[String]) -> Result<(), String> {
    let runs: usize = parse_flag(args, "--runs", 3000)?;
    let seed: u64 = parse_flag(args, "--seed", 10_000_000u64)?;
    let path = flag_value(args, "--path")?.unwrap_or("nominal");
    let mode = match path {
        "nominal" => ControlMode::Nominal,
        "saturated-x" => ControlMode::SaturatedX,
        "saturated-y" => ControlMode::SaturatedY,
        "fault-recovery" => ControlMode::FaultRecovery,
        other => return Err(format!("unknown path `{other}`")),
    };
    let jobs = flag_value(args, "--jobs")?
        .map(|raw| {
            raw.parse::<usize>()
                .map_err(|_| format!("invalid value for --jobs: `{raw}`"))
        })
        .transpose()?;
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(mode);
    // Measure first, print after: a failed campaign must not leave a
    // partial (headers-only) measurement file on stdout.
    let (campaign, seed_line) = if let Some(jobs) = jobs {
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant()).with_jobs(jobs);
        let campaign = runner.run(&trace, runs, seed).map_err(|e| e.to_string())?;
        let line = format!("# runs={runs} master_seed={seed} jobs={}", runner.jobs());
        (campaign, line)
    } else {
        let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
        let campaign =
            Campaign::measure(&mut platform, &trace, runs, seed).map_err(|e| e.to_string())?;
        (campaign, format!("# runs={runs} base_seed={seed}"))
    };
    println!("# TVCA path `{mode}` on the simulated MBPTA-compliant platform");
    println!("{seed_line}");
    campaign
        .write_to(std::io::stdout().lock())
        .map_err(|e| e.to_string())
}
