//! Analysis-service demo, fully offline on loopback: start `mbpta
//! serve`'s engine in-process, measure two TVCA paths, stream them in
//! from two concurrent clients, fold a third path into a sealed
//! federated blob and MERGE it (state travels, measurements do not),
//! then query the per-channel verdicts and the program-level envelope
//! over the wire.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_loopback
//! ```

use std::thread;

use proxima::prelude::*;
use proxima::serve::{Response, ServeClient, ServeConfig, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runs = 900;
    let stream = StreamConfig {
        block_size: 25,
        target_p: 1e-12,
        ..StreamConfig::default()
    };

    // 1. The service: one multi-channel streaming session behind a
    //    framed-TCP accept loop. Port 0 lets the OS pick.
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            stream: stream.clone(),
            snapshot_every: 500,
            ..ServeConfig::default()
        },
    )?;
    let addr = server.local_addr();
    let handle = server.spawn();
    println!("serving on {addr}");

    // 2. Two producers measure their own TVCA path and stream it in
    //    concurrently — the server demultiplexes by channel name.
    let tvca = Tvca::new(TvcaConfig::default());
    let mut producers = Vec::new();
    for (channel, mode) in [
        ("nominal", ControlMode::Nominal),
        ("saturated-x", ControlMode::SaturatedX),
    ] {
        let trace = tvca.trace(mode);
        producers.push(thread::spawn(move || -> Result<(), String> {
            let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
            let campaign =
                Campaign::measure(&mut platform, &trace, runs, 42).map_err(|e| e.to_string())?;
            let mut client = ServeClient::connect(addr).map_err(|e| e.to_string())?;
            // Chunked like a live feed; every chunk is one INGEST frame.
            for chunk in campaign.times().chunks(256) {
                client.ingest(channel, chunk).map_err(|e| e.to_string())?;
            }
            println!("  ingested {runs} runs into {channel}");
            Ok(())
        }));
    }
    for p in producers {
        p.join().expect("producer thread")?;
    }

    // 3. A remote shard: measure the fault-recovery path elsewhere,
    //    fold it into a sealed federated blob, ship ONLY the blob.
    let mut fed = FederatedAnalyzer::new(FederatedConfig::new(stream, 4).balanced_for(runs))?;
    fed.ingest_trace(
        PlatformConfig::mbpta_compliant(),
        &tvca.trace(ControlMode::FaultRecovery),
        runs,
        7,
    )?;
    let blob = save_federated(&fed);
    let mut client = ServeClient::connect(addr)?;
    let (n, total) = client.merge("fault-recovery", &blob)?;
    println!(
        "  merged fault-recovery shard blob: {} bytes for {n} runs (session total {total})",
        blob.len()
    );

    // 4. Query the finalized verdicts over the wire.
    let Response::Verdicts {
        p,
        channels,
        envelope,
    } = client.verdict(1e-12, None)?
    else {
        unreachable!("verdict() only returns Verdicts");
    };
    for (name, outcome) in &channels {
        match outcome {
            Ok(v) => println!(
                "  {name}: n={} pwcet@{p:e}={:.0} hwm={:.0} iid={}",
                v.provenance.n,
                v.budget_for(p)?,
                v.high_watermark(),
                v.iid.label(),
            ),
            Err(e) => println!("  {name}: FAILED ({e})"),
        }
    }
    let (worst, budget) = envelope.map_err(|e| format!("envelope unavailable: {e}"))?;
    println!("envelope pwcet@{p:e} = {budget:.0} (worst channel: {worst})");

    // 5. Repeat queries are answered from the fingerprint-keyed cache.
    let _ = client.verdict(1e-12, None)?;
    let stats = client.stats()?;
    println!(
        "stats: total={} channels={} cache hits={} misses={}",
        stats.total, stats.channels, stats.cache_hits, stats.cache_misses
    );

    client.shutdown()?;
    handle.join().expect("server thread")?;
    Ok(())
}
