//! Bring your own workload: build a custom program with the trace builder
//! and push it through the MBPTA pipeline.
//!
//! The program here is a small telemetry codec: CRC over an input frame,
//! a table-driven transform, and a checksum store — assembled directly
//! from `TraceBuilder` primitives rather than the TVCA.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use proxima::prelude::*;
use proxima::workload::kernels;
use proxima::workload::trace::{DataObject, TraceBuilder};

fn build_codec() -> Vec<Inst> {
    let mut b = TraceBuilder::new(0x4100_0000);
    // Buffers spread across 4 KB alignment windows, like linked sections.
    // The 16 KB frame alone occupies four lines in every cache set (one
    // per alignment window); the table adds a fifth on the sets it covers,
    // so residency exceeds the 4 ways and conflict behaviour — and hence
    // timing — depends on the per-run random placement.
    let frame = DataObject::new(0x7000_0000, 4096, 4);
    let table = DataObject::new(0x7000_5000, 512, 4);
    let out = DataObject::new(0x7000_7000, 2048, 4);

    // Three processing passes: integrity check, then transform — the
    // re-reads of `frame` after table traffic are where evictions show.
    b.loop_n(3, |b, _| {
        kernels::crc(b, &frame);
        kernels::table_interp(b, &table, &frame, &out, proxima::sim::ValueClass::Typical);
    });
    // Trailer: checksum store loop.
    b.loop_n(16, |b, i| {
        b.load(out.elem(i * 64));
        b.alu(2);
    });
    b.store(out.elem(0));
    b.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = build_codec();
    println!("custom codec: {} instructions", trace.len());

    let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
    let campaign = Campaign::measure(&mut platform, &trace, 1000, 42)?;

    let report = Pipeline::new(MbptaConfig::default()).analyze(campaign.times())?;
    println!("{}", render_report(&report));

    // Verify the platform-side protocol made the campaign analysable.
    if report.iid.passed {
        println!("i.i.d. gate passed: the randomized platform + per-run reseeding works.");
    }
    Ok(())
}
