//! Multi-channel session demo: measure every TVCA path in one thread
//! pool, demultiplex the interleaved tagged feed to one streaming engine
//! per path, and merge the per-channel verdicts into the program-level
//! pWCET envelope — the session form of the paper's per-path analysis.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example session_demux
//! ```

use proxima::prelude::*;
use proxima::stream::StreamConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let paths = [
        ("nominal", ControlMode::Nominal),
        ("saturated-x", ControlMode::SaturatedX),
        ("saturated-y", ControlMode::SaturatedY),
        ("fault-recovery", ControlMode::FaultRecovery),
    ];
    let runs = 1200;

    // 1. One measurement pool for all four paths: `run_many` shards the
    //    4 × runs indices over every core; each path draws its per-run
    //    seeds from its own SplitMix64 stream, so the result is
    //    bit-identical at any thread count.
    let tvca = Tvca::new(TvcaConfig::default());
    let traces: Vec<Vec<Inst>> = paths.iter().map(|(_, m)| tvca.trace(*m)).collect();
    let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant());
    println!("measuring {runs} runs × {} paths in one pool…", paths.len());
    let campaigns = runner.run_many(&traces, runs, 42)?;

    // 2. A streaming session: one bounded-memory engine per channel, a
    //    snapshot every 400 measurements round-robin across channels.
    let mut session = MbptaConfig::default()
        .session()
        .snapshot_every(400)
        .build_stream_with(StreamConfig {
            block_size: 25,
            refit_every_blocks: 4,
            ..StreamConfig::default()
        })?;

    // 3. Interleave the four feeds round-robin — as a shared rig would
    //    deliver them — and watch the estimates settle per channel.
    for i in 0..runs {
        for ((name, _), campaign) in paths.iter().zip(&campaigns) {
            if let Some(snap) = session.push(Tagged::new(*name, campaign.times()[i]))? {
                println!(
                    "  [{:>5}] {:<15} n={:<5} pWCET@1e-12={:.0}{}",
                    snap.total,
                    snap.channel.as_str(),
                    snap.estimate.n,
                    snap.estimate.pwcet,
                    if snap.estimate.converged {
                        "  (converged)"
                    } else {
                        ""
                    }
                );
            }
        }
    }

    // 4. Merge: per-channel verdicts plus the max-of-budgets envelope.
    let merged = session.merge();
    for (channel, verdict) in merged.ok_channels() {
        println!(
            "path {:<15} n={} pWCET@1e-12={:.0} hwm={:.0} iid={}",
            channel.as_str(),
            verdict.provenance.n,
            verdict.budget_for(1e-12)?,
            verdict.high_watermark(),
            verdict.iid.label(),
        );
    }
    let (worst, envelope) = merged.envelope_budget(1e-12)?;
    println!("program envelope: {envelope:.0} cycles (worst path: {worst})");
    Ok(())
}
