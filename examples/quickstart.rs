//! Quickstart: measure the TVCA on the time-randomized platform, validate
//! i.i.d., fit the EVT tail and print the pWCET table.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use proxima::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The MBPTA-compliant platform: random-modulo placement + random
    // replacement caches and TLBs, FPU forced to worst-case latency.
    let mut platform = Platform::new(PlatformConfig::mbpta_compliant());

    // The synthetic Thrust Vector Control Application, nominal path.
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(ControlMode::Nominal);
    println!(
        "TVCA nominal path: {} instructions / hyperperiod, data footprint {} bytes",
        trace.len(),
        tvca.data_footprint()
    );

    // Measurement campaign under the paper's protocol: flush caches and
    // reseed the hardware PRNG before every run.
    let runs = 1000;
    println!("running {runs} measured executions…");
    let campaign = Campaign::measure(&mut platform, &trace, runs, 0)?;

    // The MBPTA pipeline: i.i.d. gate → block maxima → Gumbel → pWCET.
    let report = Pipeline::new(MbptaConfig::default()).analyze(campaign.times())?;
    println!("{}", render_report(&report));

    // Compare with the industrial high-watermark practice.
    let mbta = MbtaEstimate::from_campaign(&campaign, 0.5)?;
    println!("industrial baseline on the same data: {mbta}");
    Ok(())
}
