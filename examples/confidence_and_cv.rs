//! Two ways to trust a pWCET estimate: bootstrap confidence intervals on
//! the block-maxima fit, and a cross-check with the MBPTA-CV method.
//!
//! Certification argumentation (Stephenson et al., INDIN 2013) wants more
//! than a point estimate — this example shows the supporting evidence the
//! library can produce for a verification dossier.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example confidence_and_cv
//! ```

use proxima::mbpta::confidence::budget_interval;
use proxima::mbpta::cv::analyze_cv;
use proxima::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(ControlMode::Nominal);
    let campaign = Campaign::measure(&mut platform, &trace, 2000, 10_000_000)?;

    // Block-maxima analysis with a bootstrap interval around the estimate.
    let report = Pipeline::new(MbptaConfig::default()).analyze(campaign.times())?;
    let ci = budget_interval(campaign.times(), &report, 1e-12, 0.95, 500, 42)?;
    println!("block-maxima pWCET@1e-12: {:.0} cycles", ci.estimate);
    println!(
        "  95% bootstrap interval : [{:.0}, {:.0}]  ({:.1}% relative width)",
        ci.lower,
        ci.upper,
        ci.relative_width() * 100.0
    );

    // Independent cross-check with MBPTA-CV (exponential tail over a
    // CV-selected threshold — no block-size parameter).
    let cv = analyze_cv(campaign.times(), &MbptaConfig::default())?;
    let cv_budget = cv.budget_for(1e-12)?;
    println!(
        "MBPTA-CV pWCET@1e-12    : {cv_budget:.0} cycles (threshold {:.0}, {} exceedances, CV {:.3})",
        cv.fit.threshold, cv.fit.tail_size, cv.fit.cv
    );

    if cv_budget >= ci.lower && cv_budget <= ci.upper {
        println!("\nthe CV estimate falls inside the block-maxima interval:");
        println!("two independent tail models corroborate the budget.");
    } else {
        println!("\nWARNING: the two methods disagree beyond sampling noise —");
        println!("inspect the CV plot and the Gumbel goodness-of-fit before trusting either.");
    }
    Ok(())
}
