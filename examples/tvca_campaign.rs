//! Per-path TVCA campaign: the paper's full protocol.
//!
//! Analyses each of the four control-law paths separately and takes the
//! maximum across paths ("we make per-path analysis taking the maximum
//! across paths"), printing the program-level pWCET alongside each path's.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example tvca_campaign
//! ```

use proxima::mbpta::paths::PerPathAnalysis;
use proxima::mbpta::risk::ActivationRate;
use proxima::mbpta::sched::{rate_monotonic_order, response_time_analysis, TaskSpec};
use proxima::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
    let tvca = Tvca::new(TvcaConfig::default());
    let runs = 1000;

    // One campaign per path, fresh seed range per path.
    let mut labelled = Vec::new();
    for (i, mode) in tvca.paths().into_iter().enumerate() {
        let trace = tvca.trace(mode);
        println!("measuring path `{mode}` ({} instructions)…", trace.len());
        let campaign = Campaign::measure(&mut platform, &trace, runs, (i as u64) << 32)?;
        labelled.push((mode.to_string(), campaign.times().to_vec()));
    }

    let analysis = PerPathAnalysis::run(&labelled, &MbptaConfig::default())?;

    println!("\nper-path pWCET at 1e-12:");
    for path in analysis.paths() {
        let b = path.report.budget_for(1e-12)?;
        println!(
            "  {:<16} hwm={:>10.0}  pWCET@1e-12={:>10.0}",
            path.label,
            path.report.high_watermark(),
            b
        );
    }

    let (worst, budget) = analysis.worst_path_budget(1e-12)?;
    println!("\nprogram-level pWCET@1e-12 = {budget:.0} cycles (path `{worst}`)");
    println!(
        "program high watermark    = {:.0} cycles",
        analysis.high_watermark()
    );

    // End-to-end verification: pick the cutoff from a per-hour target and
    // check schedulability with the resulting budgets. At 50 MHz, a 100 Hz
    // hyperperiod gives 500,000 cycles of frame budget.
    let rate = ActivationRate::from_hz(100.0)?;
    let cutoff = rate.per_activation_cutoff(1e-9)?;
    let (_, hyper_budget) = analysis.worst_path_budget(cutoff)?;
    println!(
        "\nstandard-driven budget (1e-9/hour at 100 Hz => cutoff {cutoff:.1e}): {hyper_budget:.0} cycles"
    );
    // The hyperperiod-level TVCA plus two housekeeping tasks on the same core.
    let mut tasks = vec![
        TaskSpec::implicit_deadline("tvca-hyperperiod", 500_000.0, hyper_budget)?,
        TaskSpec::implicit_deadline("telemetry", 2_000_000.0, 150_000.0)?,
        TaskSpec::implicit_deadline("housekeeping", 4_000_000.0, 300_000.0)?,
    ];
    rate_monotonic_order(&mut tasks);
    let sched = response_time_analysis(&tasks)?;
    println!(
        "fixed-priority schedulability at those budgets (U={:.2}): {}",
        sched.utilization,
        if sched.schedulable() {
            "SCHEDULABLE"
        } else {
            "NOT schedulable"
        }
    );
    for t in &sched.tasks {
        println!(
            "  {:<18} R={:>10} (D={:.0})",
            t.name,
            t.response_time
                .map(|r| format!("{r:.0}"))
                .unwrap_or_else(|| "miss".into()),
            t.deadline
        );
    }
    Ok(())
}
