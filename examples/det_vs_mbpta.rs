//! DET vs MBPTA: the paper's Figure 3 comparison, interactively.
//!
//! Runs the TVCA on both platform personalities and prints:
//! * average execution times (DET vs RAND — should be comparable),
//! * the DET high watermark and the HWM+20%/+50% industrial bounds,
//! * pWCET estimates at cutoffs 10⁻³ … 10⁻¹⁵,
//! * the DET layout sensitivity the engineering factor is meant to cover.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example det_vs_mbpta
//! ```

use proxima::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tvca = Tvca::new(TvcaConfig::default());
    let trace = tvca.trace(ControlMode::Nominal);
    let runs = 1000;

    // RAND platform: the measurement campaign MBPTA consumes.
    let mut rand_platform = Platform::new(PlatformConfig::mbpta_compliant());
    let rand_campaign = Campaign::measure(&mut rand_platform, &trace, runs, 0)?;
    let report = Pipeline::new(MbptaConfig::default()).analyze(rand_campaign.times())?;

    // DET platform: seed-insensitive, so "the" observed time per layout.
    let mut det_platform = Platform::new(PlatformConfig::deterministic());
    let det_campaign = Campaign::measure(&mut det_platform, &trace, runs.min(100), 0)?;

    let rand_summary = rand_campaign.summary()?;
    let det_summary = det_campaign.summary()?;
    println!("average execution time:");
    println!("  DET  : {:>12.1} cycles", det_summary.mean);
    println!(
        "  RAND : {:>12.1} cycles ({:+.2}% vs DET)",
        rand_summary.mean,
        100.0 * (rand_summary.mean - det_summary.mean) / det_summary.mean
    );

    println!("\nindustrial MBTA bounds (DET platform):");
    for margin in MbtaEstimate::customary_margins() {
        let est = MbtaEstimate::from_campaign(&det_campaign, margin)?;
        println!("  {est}");
    }

    println!("\nMBPTA pWCET estimates (RAND platform):");
    for exp in [3i32, 6, 9, 12, 15] {
        let budget = report.budget_for(10f64.powi(-exp))?;
        println!("  cutoff 1e-{exp:<2} : {budget:>12.0} cycles");
    }

    // The uncertainty the engineering factor is supposed to absorb:
    // different link-time layouts change the DET execution time.
    println!("\nDET layout sensitivity (same program, different link layouts):");
    let mut det_times = Vec::new();
    for layout in 0..8u64 {
        let t = Tvca::new(TvcaConfig {
            scale: Scale::Full,
            layout_seed: layout,
        });
        let cycles = det_platform.run(&t.trace(ControlMode::Nominal), 0).cycles;
        det_times.push(cycles as f64);
        println!("  layout {layout}: {cycles:>12} cycles");
    }
    let spread = (det_times.iter().cloned().fold(f64::MIN, f64::max)
        - det_times.iter().cloned().fold(f64::MAX, f64::min))
        / det_summary.mean
        * 100.0;
    println!("  spread: {spread:.2}% of the mean — unobserved layouts are the MBTA risk");
    Ok(())
}
